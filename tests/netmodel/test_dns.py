"""UDP and DNS wire models (the §8 extension substrate)."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.dns import (
    DNSAnswer,
    DNSMessage,
    DNSQuestion,
    QTYPE_A,
    QTYPE_AAAA,
    RCODE_NXDOMAIN,
    decode_name,
    encode_name,
    extract_qname,
    looks_like_dns,
    query,
)
from repro.netmodel.packet import Packet, udp_packet
from repro.netmodel.udp import UDPDatagram

DOMAIN = "www.blocked.example"


class TestUDP:
    def test_round_trip(self):
        datagram = UDPDatagram(sport=40000, dport=53, payload=b"hello")
        parsed = UDPDatagram.from_bytes(datagram.to_bytes("1.1.1.1", "2.2.2.2"))
        assert parsed.sport == 40000 and parsed.dport == 53
        assert parsed.payload == b"hello"

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            UDPDatagram.from_bytes(b"\x00\x01")

    def test_bad_length_rejected(self):
        raw = bytearray(UDPDatagram(sport=1, dport=2).to_bytes())
        raw[4:6] = (2).to_bytes(2, "big")  # length < header
        with pytest.raises(ValueError):
            UDPDatagram.from_bytes(bytes(raw))

    def test_packet_integration(self):
        packet = udp_packet("10.0.0.1", "10.0.0.2", 40000, 53, payload=b"x")
        assert packet.is_udp and not packet.is_tcp
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.is_udp and parsed.udp.payload == b"x"

    def test_flow_key_from_udp(self):
        packet = udp_packet("10.0.0.1", "10.0.0.2", 40000, 53)
        flow = packet.flow_key()
        assert flow.sport == 40000 and flow.protocol == 17


class TestNames:
    def test_encode_decode_round_trip(self):
        raw = encode_name(DOMAIN)
        name, offset = decode_name(raw, 0)
        assert name == DOMAIN
        assert offset == len(raw)

    def test_compression_pointer_followed(self):
        base = encode_name(DOMAIN)
        data = base + b"\xc0\x00"  # pointer back to offset 0
        name, offset = decode_name(data, len(base))
        assert name == DOMAIN
        assert offset == len(base) + 2

    def test_compression_loop_rejected(self):
        data = b"\xc0\x00"
        with pytest.raises(ValueError):
            decode_name(data, 0)

    def test_oversized_label_rejected(self):
        with pytest.raises(ValueError):
            encode_name("a" * 64 + ".example")


class TestMessages:
    def test_query_round_trip(self):
        message = query(DOMAIN, txid=0xBEEF)
        parsed = DNSMessage.from_bytes(message.to_bytes())
        assert parsed.txid == 0xBEEF
        assert parsed.qname == DOMAIN
        assert not parsed.is_response
        assert parsed.recursion_desired

    def test_response_with_answer_round_trip(self):
        message = DNSMessage(
            txid=7,
            is_response=True,
            recursion_available=True,
            questions=[DNSQuestion(DOMAIN)],
            answers=[DNSAnswer(DOMAIN, QTYPE_A, 300, "192.0.2.55")],
        )
        parsed = DNSMessage.from_bytes(message.to_bytes())
        assert parsed.is_response and parsed.recursion_available
        assert parsed.answers[0].address == "192.0.2.55"
        assert parsed.answers[0].ttl == 300

    def test_nxdomain_round_trip(self):
        message = DNSMessage(
            txid=1,
            is_response=True,
            rcode=RCODE_NXDOMAIN,
            questions=[DNSQuestion(DOMAIN)],
        )
        parsed = DNSMessage.from_bytes(message.to_bytes())
        assert parsed.rcode == RCODE_NXDOMAIN and not parsed.answers

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            DNSMessage.from_bytes(b"\x00\x01\x00")

    def test_sniffer(self):
        assert looks_like_dns(query(DOMAIN).to_bytes())
        assert not looks_like_dns(b"GET / HTTP/1.1\r\n\r\n   ")

    def test_extract_qname(self):
        assert extract_qname(query(DOMAIN).to_bytes()) == DOMAIN
        assert extract_qname(b"junk") is None

    @given(
        txid=st.integers(min_value=0, max_value=0xFFFF),
        qtype=st.sampled_from([QTYPE_A, QTYPE_AAAA]),
    )
    def test_query_round_trip_property(self, txid, qtype):
        parsed = DNSMessage.from_bytes(query(DOMAIN, txid, qtype).to_bytes())
        assert parsed.txid == txid
        assert parsed.questions[0].qtype == qtype
