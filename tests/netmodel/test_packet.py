"""Composite packet invariants and serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel.icmp import ICMPMessage, TYPE_TIME_EXCEEDED
from repro.netmodel.ip import IPHeader, PROTO_ICMP, PROTO_TCP
from repro.netmodel.packet import Packet, icmp_packet, next_ip_id, tcp_packet
from repro.netmodel.tcp import SYN, TCPSegment


class TestConstruction:
    def test_requires_exactly_one_payload(self):
        with pytest.raises(ValueError):
            Packet(ip=IPHeader(src="1.1.1.1", dst="2.2.2.2"))

    def test_rejects_both_payloads(self):
        with pytest.raises(ValueError):
            Packet(
                ip=IPHeader(src="1.1.1.1", dst="2.2.2.2"),
                tcp=TCPSegment(sport=1, dport=2),
                icmp=ICMPMessage(TYPE_TIME_EXCEEDED, 0),
            )

    def test_protocol_forced_to_match_payload(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert packet.ip.protocol == PROTO_TCP
        message = icmp_packet("1.1.1.1", "2.2.2.2", ICMPMessage(11, 0))
        assert message.ip.protocol == PROTO_ICMP

    def test_flow_key_matches_headers(self):
        packet = tcp_packet("10.0.0.1", "10.0.0.2", 4242, 443)
        flow = packet.flow_key()
        assert flow.sport == 4242 and flow.dport == 443

    def test_icmp_has_no_flow_key(self):
        packet = icmp_packet("1.1.1.1", "2.2.2.2", ICMPMessage(11, 0))
        with pytest.raises(ValueError):
            packet.flow_key()

    def test_ip_ids_monotonic(self):
        first = next_ip_id()
        second = next_ip_id()
        assert second == (first + 1) & 0xFFFF


class TestSerialization:
    def test_tcp_round_trip(self):
        packet = tcp_packet("10.1.1.1", "10.2.2.2", 999, 80, payload=b"hello", ttl=3)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.is_tcp
        assert parsed.ip.ttl == 3
        assert parsed.tcp.payload == b"hello"

    def test_icmp_round_trip(self):
        inner = tcp_packet("10.1.1.1", "10.2.2.2", 999, 80).to_bytes()
        packet = icmp_packet(
            "10.9.9.9", "10.1.1.1", ICMPMessage(TYPE_TIME_EXCEEDED, 0, quote=inner[:28])
        )
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.is_icmp
        assert parsed.icmp.quote == inner[:28]

    def test_brief_summaries(self):
        packet = tcp_packet("10.0.0.1", "10.0.0.2", 1, 2, flags=SYN)
        assert "SYN" in packet.brief()
        message = icmp_packet("10.0.0.3", "10.0.0.1", ICMPMessage(11, 0))
        assert "ICMP" in message.brief()

    @given(payload=st.binary(max_size=200), ttl=st.integers(min_value=1, max_value=255))
    def test_round_trip_property(self, payload, ttl):
        packet = tcp_packet("10.0.0.1", "10.0.0.2", 1234, 80, payload=payload, ttl=ttl)
        parsed = Packet.from_bytes(packet.to_bytes())
        assert parsed.tcp.payload == payload
        assert parsed.ip.ttl == ttl
