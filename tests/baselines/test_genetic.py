"""The Geneva-style genetic baseline."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import (
    BLOCKED_DOMAIN,
    ENDPOINT_IP,
    build_linear_world,
    make_profile_device,
)

from repro.baselines.genetic import (
    GENE_POOL,
    Gene,
    GeneticConfig,
    GeneticSearch,
    Individual,
)
from repro.devices.vendors import KZ_STATE, PALO_ALTO
from repro.netmodel.http import parse_request
from repro.services.webserver import ServerProfile, WebServer


def _search_world():
    device = make_profile_device(KZ_STATE)
    world = build_linear_world(
        device=device,
        device_link=2,
        endpoint_domains=(BLOCKED_DOMAIN,),
        server=WebServer([BLOCKED_DOMAIN], ServerProfile.lenient(BLOCKED_DOMAIN)),
    )
    return world


class TestGenes:
    def test_pool_nonempty_and_unique(self):
        assert len(GENE_POOL) >= 25
        assert len(set(GENE_POOL)) == len(GENE_POOL)

    def test_every_gene_produces_valid_bytes(self):
        for gene in GENE_POOL:
            individual = Individual(genes=(gene,))
            payload = individual.build(BLOCKED_DOMAIN)
            assert isinstance(payload, bytes) and payload

    def test_set_method_gene(self):
        individual = Individual(genes=(Gene("set_method", "PUT"),))
        assert individual.build(BLOCKED_DOMAIN).startswith(b"PUT ")

    def test_genes_compose_in_order(self):
        individual = Individual(
            genes=(Gene("pad_host", "*|"), Gene("pad_host", "|*"))
        )
        parsed = parse_request(individual.build(BLOCKED_DOMAIN))
        assert parsed.host == "*" + BLOCKED_DOMAIN + "*"

    def test_describe(self):
        individual = Individual(genes=(Gene("set_path", "z"),))
        assert "set_path(z)" in individual.describe()


class TestSearch:
    def test_finds_circumventing_strategy(self):
        world = _search_world()
        search = GeneticSearch(
            world.sim,
            world.client,
            ENDPOINT_IP,
            BLOCKED_DOMAIN,
            seed=1,
        )
        outcome = search.run()
        assert outcome.succeeded
        assert outcome.best.evaded
        assert outcome.probes_used > 0
        assert outcome.probes_used == search.probes_used

    def test_deterministic_given_seed(self):
        outcomes = []
        for _ in range(2):
            world = _search_world()
            search = GeneticSearch(
                world.sim, world.client, ENDPOINT_IP, BLOCKED_DOMAIN, seed=7
            )
            outcomes.append(search.run())
        assert outcomes[0].best.describe() == outcomes[1].best.describe()
        assert outcomes[0].probes_used == outcomes[1].probes_used

    def test_cheaper_than_full_cenfuzz_sweep(self):
        # The whole point of genetic search: far fewer probes than the
        # 410-permutation deterministic sweep (x2 for control probes).
        world = _search_world()
        search = GeneticSearch(
            world.sim, world.client, ENDPOINT_IP, BLOCKED_DOMAIN, seed=3
        )
        outcome = search.run()
        assert outcome.succeeded
        assert outcome.probes_used < 2 * 410

    def test_fitness_cache_avoids_duplicate_probes(self):
        world = _search_world()
        search = GeneticSearch(
            world.sim, world.client, ENDPOINT_IP, BLOCKED_DOMAIN, seed=3
        )
        individual = Individual(genes=(Gene("set_path", "z"),))
        search.evaluate(individual)
        probes_after_first = search.probes_used
        search.evaluate(Individual(genes=(Gene("set_path", "z"),)))
        assert search.probes_used == probes_after_first

    def test_history_monotone_nondecreasing(self):
        world = _search_world()
        search = GeneticSearch(
            world.sim, world.client, ENDPOINT_IP, BLOCKED_DOMAIN, seed=5,
            config=GeneticConfig(generations=5, stop_on_circumvention=False),
        )
        outcome = search.run()
        assert all(
            b >= a for a, b in zip(outcome.history, outcome.history[1:])
        )

    def test_hard_target_may_fail_gracefully(self):
        # A keyword-matching engine (Palo Alto) resists most
        # single-field tricks; the search must terminate regardless.
        device = make_profile_device(PALO_ALTO)
        world = build_linear_world(
            device=device, device_link=2, endpoint_domains=(BLOCKED_DOMAIN,)
        )
        search = GeneticSearch(
            world.sim,
            world.client,
            ENDPOINT_IP,
            BLOCKED_DOMAIN,
            seed=2,
            config=GeneticConfig(generations=3, population_size=8),
        )
        outcome = search.run()
        assert outcome.generations_run <= 3
