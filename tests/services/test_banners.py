"""Banner service builders."""

from repro.services.banners import (
    ftp_service,
    generic_linux_services,
    http_admin_service,
    smtp_service,
    snmp_service,
    ssh_service,
    telnet_service,
)


class TestBuilders:
    def test_ssh_banner_terminated(self):
        service = ssh_service("SSH-2.0-TestSSH")
        assert service.banner == b"SSH-2.0-TestSSH\r\n"
        assert service.port == 22 and service.protocol == "ssh"

    def test_ftp_smtp_get_220_prefix(self):
        assert ftp_service("hello ftp").banner.startswith(b"220 ")
        assert smtp_service("hello smtp").banner.startswith(b"220 ")

    def test_telnet_greeting(self):
        assert b"login:" in telnet_service("router login:").banner

    def test_snmp_answers_sysdescr_probe(self):
        service = snmp_service("TestOS v1.2")
        assert service.respond(b"SNMP-GET sysDescr") == b"TestOS v1.2"
        assert service.respond(b"SNMP-GET other") == b""

    def test_http_admin_serves_title(self):
        service = http_admin_service(server_header="TestServe", title="Admin UI")
        response = service.respond(b"GET / HTTP/1.1\r\n\r\n")
        assert b"Server: TestServe" in response
        assert b"<title>Admin UI</title>" in response

    def test_http_admin_auth_realm(self):
        service = http_admin_service(title="x", realm="router")
        response = service.respond(b"GET /")
        assert b"401 Unauthorized" in response
        assert b'realm="router"' in response

    def test_http_admin_ignores_non_http_probe(self):
        service = http_admin_service(title="x")
        assert service.respond(b"\x16\x03\x01") == b""

    def test_generic_services_have_no_vendor_hints(self):
        for service in generic_linux_services():
            text = (service.banner + b" ".join(service.probe_responses.values())).lower()
            for vendor in (b"fortigate", b"cisco", b"kerio", b"mikrotik"):
                assert vendor not in text
