"""Endpoint web-server behaviour: parsing strictness and vhosts."""

import pytest

from repro.netmodel.http import HTTPRequest, HTTPResponse
from repro.netmodel.tls import ClientHello, ServerHello
from repro.services.webserver import (
    FilteringWebServer,
    ServerProfile,
    TLS_SERVED_MARKER,
    WebServer,
)

DOMAIN = "www.site.example"


def _http_reply(server, request_bytes):
    reply = server.handle_payload(request_bytes, "10.0.0.1")
    if reply.drop or reply.reset:
        return reply, None
    return reply, HTTPResponse.parse(reply.responses[0])


class TestStrictServer:
    server = WebServer([DOMAIN])

    def test_serves_known_host(self):
        _, response = _http_reply(self.server, HTTPRequest.normal(DOMAIN).build())
        assert response.status_code == 200
        assert DOMAIN in response.body

    def test_unknown_host_403(self):
        raw = HTTPRequest(host="www.other.example").build()
        _, response = _http_reply(self.server, raw)
        assert response.status_code == 403

    def test_invalid_version_505(self):
        raw = HTTPRequest(host=DOMAIN, http_word="HTTP/9").build()
        _, response = _http_reply(self.server, raw)
        assert response.status_code == 505

    def test_disallowed_method_405(self):
        raw = HTTPRequest(host=DOMAIN, method="PATCH").build()
        _, response = _http_reply(self.server, raw)
        assert response.status_code == 405

    def test_malformed_request_line_400(self):
        _, response = _http_reply(self.server, b"GET /\r\nHost: x\r\n\r\n")
        assert response.status_code == 400

    def test_padded_host_rejected(self):
        raw = HTTPRequest(host="**" + DOMAIN + "*").build()
        _, response = _http_reply(self.server, raw)
        assert response.status_code in (400, 403)

    def test_garbage_400(self):
        _, response = _http_reply(self.server, b"\x00\x01\x02")
        assert response.status_code == 400


class TestLenientServer:
    server = WebServer([DOMAIN], ServerProfile.lenient(DOMAIN))

    def test_padded_host_trimmed_and_served(self):
        raw = HTTPRequest(host="**" + DOMAIN + "*").build()
        _, response = _http_reply(self.server, raw)
        assert response.status_code == 200
        assert DOMAIN in response.body

    def test_unknown_host_falls_back_to_default_vhost(self):
        raw = HTTPRequest(host="www.whatever.example").build()
        _, response = _http_reply(self.server, raw)
        assert response.status_code == 200

    def test_weird_version_tolerated(self):
        raw = HTTPRequest(host=DOMAIN, http_word="HTTP/9").build()
        _, response = _http_reply(self.server, raw)
        assert response.status_code == 200


class TestWildcardServer:
    server = WebServer(
        [DOMAIN], ServerProfile(wildcard_subdomains=True)
    )

    def test_subdomain_served(self):
        raw = HTTPRequest(host="wiki.site.example").build()
        _, response = _http_reply(self.server, raw)
        assert response.status_code == 200

    def test_bare_domain_served(self):
        raw = HTTPRequest(host="site.example").build()
        _, response = _http_reply(self.server, raw)
        assert response.status_code == 200

    def test_unrelated_host_still_rejected(self):
        raw = HTTPRequest(host="www.unrelated.example").build()
        _, response = _http_reply(self.server, raw)
        assert response.status_code == 403


class TestTLS:
    server = WebServer([DOMAIN])

    def test_known_sni_served_with_marker(self):
        reply = self.server.handle_payload(
            ClientHello.normal(DOMAIN).build(), "10.0.0.1"
        )
        assert reply.responses[0][0] == 22  # handshake record
        assert reply.responses[1].startswith(TLS_SERVED_MARKER + DOMAIN.encode())

    def test_unknown_sni_default_cert(self):
        reply = self.server.handle_payload(
            ClientHello.normal("www.other.example").build(), "10.0.0.1"
        )
        assert b"default-cert" in reply.responses[1]

    def test_strict_sni_alert(self):
        strict = WebServer([DOMAIN], ServerProfile(tls_requires_known_sni=True))
        reply = strict.handle_payload(
            ClientHello.normal("www.other.example").build(), "10.0.0.1"
        )
        assert reply.responses[0][0] == 21  # alert record

    def test_malformed_hello_alert(self):
        reply = self.server.handle_payload(b"\x16\x03\x01\x00\x02\x01\x00", "10.0.0.1")
        assert reply.responses[0][0] == 21


class TestFilteringWebServer:
    def test_drop_mode_silent_on_blocked_host(self):
        server = FilteringWebServer([DOMAIN], ["www.banned.example"], mode="drop")
        raw = HTTPRequest(host="www.banned.example").build()
        reply = server.handle_payload(raw, "10.0.0.1")
        assert reply.drop

    def test_reset_mode_resets(self):
        server = FilteringWebServer([DOMAIN], ["www.banned.example"], mode="reset")
        raw = HTTPRequest(host="www.banned.example").build()
        reply = server.handle_payload(raw, "10.0.0.1")
        assert reply.reset

    def test_blocked_sni_also_filtered(self):
        server = FilteringWebServer([DOMAIN], ["www.banned.example"], mode="drop")
        reply = server.handle_payload(
            ClientHello.normal("www.banned.example").build(), "10.0.0.1"
        )
        assert reply.drop

    def test_other_hosts_served_normally(self):
        server = FilteringWebServer([DOMAIN], ["www.banned.example"], mode="drop")
        reply = server.handle_payload(HTTPRequest.normal(DOMAIN).build(), "10.0.0.1")
        assert not reply.drop and reply.responses

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FilteringWebServer([DOMAIN], ["x"], mode="tarpit")
