"""The longitudinal fact store: append-only persistence, interval and
transition queries, campaign extraction, and the end-to-end observatory
acceptance run (drifted epochs -> queryable mechanism transitions)."""

import json

import pytest

from repro.cli import main
from repro.devices.actions import KIND_BLOCKPAGE, KIND_RST
from repro.experiments.campaign import CampaignConfig
from repro.geo.drift import DriftOp, DriftPlan
from repro.persist import PersistError
from repro.store import (
    Fact,
    FactStore,
    PRED_BLOCKS_WITH,
    PRED_HOSTS_DEVICE,
    entity_as,
    facts_from_campaign,
    run_observatory,
)
from repro.telemetry import Telemetry


def fact(s="as:1", p="blocks_with", o="RST"):
    return Fact(subject=s, predicate=p, object=o)


class TestFactStore:
    def test_round_trips_across_instances(self, tmp_path):
        store = FactStore(tmp_path)
        store.append_epoch(0, [fact(o="TIMEOUT"), fact(s="as:2", o="RST")])
        store.append_epoch(2, [fact(o="RST")])
        reloaded = FactStore(tmp_path)
        assert reloaded.epochs() == [0, 2]
        assert reloaded.fact_count() == 3
        assert reloaded.facts_at(2) == [fact(o="RST")]

    def test_append_deduplicates(self, tmp_path):
        store = FactStore(tmp_path)
        assert store.append_epoch(0, [fact(), fact(), fact(o="HTTP")]) == 2

    def test_epochs_strictly_increasing(self, tmp_path):
        store = FactStore(tmp_path)
        store.append_epoch(3, [fact()])
        with pytest.raises(PersistError, match="strictly increasing"):
            store.append_epoch(3, [fact()])
        with pytest.raises(PersistError, match="strictly increasing"):
            store.append_epoch(1, [fact()])

    def test_unmanifested_facts_rejected(self, tmp_path):
        store = FactStore(tmp_path)
        store.append_epoch(0, [fact()])
        record = dict(fact().to_dict(), epoch=9)
        with (tmp_path / FactStore.FACTS).open("a") as handle:
            handle.write(json.dumps(record) + "\n")
        with pytest.raises(PersistError, match="never recorded"):
            FactStore(tmp_path)

    def test_corrupt_manifest_rejected(self, tmp_path):
        store = FactStore(tmp_path)
        store.append_epoch(0, [fact()])
        with (tmp_path / FactStore.EPOCHS).open("a") as handle:
            handle.write('{"no_epoch": true}\n')
        with pytest.raises(PersistError, match="corrupt epoch manifest"):
            FactStore(tmp_path)


class TestQueries:
    @pytest.fixture()
    def store(self, tmp_path):
        store = FactStore(tmp_path)
        # as:1 drifts TIMEOUT -> RST at epoch 1; as:2 is steady; the
        # flapper vanishes at 1 and returns at 2.
        store.append_epoch(0, [fact(o="TIMEOUT"), fact(s="as:2", o="DROP"),
                               fact(s="as:3", o="FIN")])
        store.append_epoch(1, [fact(o="RST"), fact(s="as:2", o="DROP")])
        store.append_epoch(2, [fact(o="RST"), fact(s="as:2", o="DROP"),
                               fact(s="as:3", o="FIN")])
        return store

    def test_intervals(self, store):
        ivs = store.intervals(subject="as:1")
        assert [(iv.fact.object, iv.valid_from, iv.valid_to) for iv in ivs] \
            == [("RST", 1, 2), ("TIMEOUT", 0, 0)]

    def test_interval_splits_on_gap(self, store):
        ivs = store.intervals(subject="as:3")
        assert [(iv.valid_from, iv.valid_to) for iv in ivs] == [(0, 0), (2, 2)]

    def test_transitions(self, store):
        ts = store.transitions(subject="as:1")
        assert [(t.epoch, t.before, t.after) for t in ts] == [
            (1, ("TIMEOUT",), ("RST",))
        ]
        # Steady facts never transition.
        assert store.transitions(subject="as:2") == []

    def test_gap_epochs_assert_nothing_between_observations(self, tmp_path):
        store = FactStore(tmp_path)
        store.append_epoch(0, [fact()])
        store.append_epoch(4, [fact()])
        ivs = store.intervals(subject="as:1")
        # Epochs 1-3 were never observed: [0, 4] is one unbroken run.
        assert [(iv.valid_from, iv.valid_to) for iv in ivs] == [(0, 4)]


KZ_PLAN = DriftPlan(name="kz-2-step", ops=(
    DriftOp(epoch=1, kind="firmware", target="dev16", action_kind=KIND_RST),
    DriftOp(epoch=2, kind="firmware", target="dev16",
            action_kind=KIND_BLOCKPAGE),
))

CONFIG = CampaignConfig(repetitions=2, max_endpoints=4, fuzz_max_endpoints=2)


@pytest.fixture(scope="module")
def observatory(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs")
    telemetry = Telemetry()
    summary = run_observatory(
        "KZ", out, epochs=3, seed=11, scale=0.35, config=CONFIG,
        drift_plan=KZ_PLAN, telemetry=telemetry,
    )
    return out, summary, telemetry


class TestObservatory:
    def test_transition_query_matches_drift_ground_truth(self, observatory):
        """The ISSUE acceptance: a 3-epoch drifted campaign answers a
        mechanism-transition query whose epochs are exactly the plan's
        op epochs."""
        out, _, _ = observatory
        store = FactStore(out / "facts")
        ts = store.transitions(subject=entity_as(9198),
                               predicate=PRED_BLOCKS_WITH)
        assert [(t.epoch, set(t.before), set(t.after)) for t in ts] == [
            (1, {"TIMEOUT"}, {"RST"}),
            (2, {"RST"}, {"HTTP", "RST"}),  # TLS traces degrade to RST
        ]

    def test_extraction_links_as_to_device(self, observatory):
        out, _, _ = observatory
        store = FactStore(out / "facts")
        hosted = store.intervals(subject=entity_as(9198),
                                 predicate=PRED_HOSTS_DEVICE)
        assert hosted and all(
            iv.fact.object.startswith("device:") for iv in hosted
        )

    def test_epoch_directories_are_loadable_campaigns(self, observatory):
        from repro.persist import load_campaign

        out, summary, _ = observatory
        assert summary.epochs == 3
        for epoch in range(3):
            loaded = load_campaign(out / f"epoch-{epoch:03d}")
            provenance = loaded.meta["provenance"]
            assert provenance["epoch"] == epoch
            assert provenance["drift_plan"] == KZ_PLAN.to_dict()
            # A reloaded campaign carries no world, so extraction drops
            # only the AS-registry facts; measurements re-extract
            # identically.
            reloaded = set(facts_from_campaign(loaded))
            stored = set(store_facts(out, epoch))
            assert reloaded <= stored
            assert {f.predicate for f in stored - reloaded} <= {
                "named", "in_country"
            }

    def test_continuation_reuses_persisted_cache(self, observatory):
        """Re-invoking the observatory continues at the next epoch and,
        with no new drift ops, answers >= 50% of units from the cache
        (here: all of them)."""
        out, _, _ = observatory
        telemetry = Telemetry()
        summary = run_observatory(
            "KZ", out, epochs=1, seed=11, scale=0.35, config=CONFIG,
            drift_plan=KZ_PLAN, telemetry=telemetry,
        )
        (result,) = summary.epoch_results
        assert result.epoch == 3
        assert result.reuse_rate >= 0.5
        assert telemetry.counters["store.unit_cache_hits"] >= (
            result.reused_units
        )
        assert telemetry.counters.get("store.units_executed.trace", 0) == 0
        store = FactStore(out / "facts")
        assert store.epochs() == [0, 1, 2, 3]


def store_facts(out, epoch):
    return FactStore(out / "facts").facts_at(epoch)


class TestFactsCLI:
    def test_query_transitions_text(self, observatory, capsys):
        out, _, _ = observatory
        code = main([
            "facts", "query", "--store", str(out / "facts"),
            "--subject", "as:9198", "--predicate", "blocks_with",
            "--transitions",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "as:9198 blocks_with: epoch 1: {TIMEOUT} -> {RST}" in text

    def test_query_intervals_json(self, observatory, capsys):
        out, _, _ = observatory
        code = main([
            "facts", "query", "--store", str(out / "facts"),
            "--subject", "as:9198", "--predicate", "blocks_with", "--json",
        ])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        by_object = {row["object"]: row for row in rows}
        assert by_object["TIMEOUT"]["valid_to"] == 0
        assert by_object["RST"]["valid_from"] == 1

    def test_empty_store_exits_2(self, tmp_path, capsys):
        code = main(["facts", "query", "--store", str(tmp_path / "none")])
        assert code == 2
        assert "no epochs" in capsys.readouterr().err

    def test_extract_missing_run_exits_2(self, tmp_path, capsys):
        code = main([
            "facts", "extract", "--run", str(tmp_path / "missing"),
            "--store", str(tmp_path / "facts"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_extract_from_saved_campaign(self, observatory, tmp_path, capsys):
        out, _, _ = observatory
        code = main([
            "facts", "extract", "--run", str(out / "epoch-000"),
            "--store", str(tmp_path / "facts"),
        ])
        assert code == 0
        assert "extracted" in capsys.readouterr().out
        store = FactStore(tmp_path / "facts")
        assert store.epochs() == [0]
        assert store.fact_count() > 0
