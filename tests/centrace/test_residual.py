"""Residual-censorship measurement (§4.1's stateful devices)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import (
    BLOCKED_DOMAIN,
    ENDPOINT_IP,
    OK_DOMAIN,
    build_linear_world,
    make_profile_device,
)

from repro.core.centrace.residual import (
    ResidualProbe,
    SCOPE_3TUPLE,
    SCOPE_HOSTS,
    SCOPE_NONE,
)
from repro.devices.vendors import DDOSGUARD, KZ_STATE, PALO_ALTO


def _probe_world(profile):
    device = make_profile_device(profile)
    world = build_linear_world(
        device=device, device_link=2, endpoint_domains=(OK_DOMAIN,)
    )
    return world, ResidualProbe(world.sim, world.client)


class TestStatelessDevices:
    def test_stateless_device_detected(self):
        world, probe = _probe_world(DDOSGUARD)  # residual off
        measurement = probe.measure(ENDPOINT_IP, BLOCKED_DOMAIN)
        assert not measurement.stateful
        assert measurement.scope == SCOPE_NONE
        assert "stateless" in measurement.summary()


class TestStatefulDevices:
    def test_kz_state_punishment_duration_bracketed(self):
        # KZ_STATE punishes the 3-tuple for 60 seconds.
        world, probe = _probe_world(KZ_STATE)
        measurement = probe.measure(ENDPOINT_IP, BLOCKED_DOMAIN)
        assert measurement.stateful
        low, high = measurement.duration_bounds
        assert low < 60.0 <= high
        assert high - low < 10.0  # bisection narrowed the bracket

    def test_kz_state_scope_is_3tuple(self):
        world, probe = _probe_world(KZ_STATE)
        measurement = probe.measure(ENDPOINT_IP, BLOCKED_DOMAIN)
        assert measurement.scope == SCOPE_3TUPLE

    def test_paloalto_scope_is_host_pair(self):
        # PALO_ALTO punishes the (client, server) pair, all ports.
        world, probe = _probe_world(PALO_ALTO)
        measurement = probe.measure(ENDPOINT_IP, BLOCKED_DOMAIN)
        assert measurement.stateful
        assert measurement.scope == SCOPE_HOSTS
        low, high = measurement.duration_bounds
        assert low < 75.0 <= high  # ground truth: 75 s

    def test_probe_accounting(self):
        world, probe = _probe_world(KZ_STATE)
        measurement = probe.measure(ENDPOINT_IP, BLOCKED_DOMAIN)
        assert measurement.probes_used == probe.probes_used > 5

    def test_summary_renders(self):
        world, probe = _probe_world(KZ_STATE)
        measurement = probe.measure(ENDPOINT_IP, BLOCKED_DOMAIN)
        assert "stateful (3-tuple)" in measurement.summary()


class TestEdgeCases:
    def test_unreachable_control(self):
        device = make_profile_device(
            KZ_STATE, domains=(BLOCKED_DOMAIN, "www.example.com")
        )
        world = build_linear_world(device=device, device_link=2)
        probe = ResidualProbe(world.sim, world.client)
        measurement = probe.measure(ENDPOINT_IP, BLOCKED_DOMAIN)
        assert measurement.scope == "control-unreachable"
        assert not measurement.stateful
