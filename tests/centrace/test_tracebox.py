"""Tracebox-style localization of header-modifying middleboxes."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import CONTROL_DOMAIN, ENDPOINT_IP, build_linear_world

from repro.core.centrace import CenTrace, CenTraceConfig
from repro.core.centrace.tracebox import (
    hop_quotes,
    locate_modifications,
    locate_modifications_aggregated,
)


def _sweep(world, repetitions=1):
    tracer = CenTrace(
        world.sim, world.client, config=CenTraceConfig(repetitions=repetitions)
    )
    return [
        tracer.sweep(ENDPOINT_IP, CONTROL_DOMAIN, "http")
        for _ in range(repetitions)
    ]


class TestHopQuotes:
    def test_every_responding_hop_quoted(self):
        world = build_linear_world()
        quotes = hop_quotes(_sweep(world)[0])
        assert len(quotes) == len(world.routers)
        assert [q.hop_ip for q in quotes] == [r.ip for r in world.routers]

    def test_clean_path_shows_no_changes(self):
        world = build_linear_world()
        for quote in hop_quotes(_sweep(world)[0]):
            assert not quote.delta.any_header_change()


class TestLocalization:
    def test_tos_rewriter_localized_to_its_link(self):
        world = build_linear_world()
        world.routers[2].rewrite_tos = 0x28
        events = locate_modifications(_sweep(world)[0])
        tos = [e for e in events if e.fieldname == "ip_tos"]
        assert len(tos) == 1
        # The rewrite happens when router index 2 forwards, so the
        # first *quote* showing it comes from the next hop (ttl 4).
        assert tos[0].at_ttl == 4
        assert tos[0].at_hop == world.routers[3].ip
        assert tos[0].before_ttl == 3
        assert tos[0].before_hop == world.routers[2].ip

    def test_first_hop_rewriter(self):
        world = build_linear_world()
        world.routers[0].rewrite_tos = 0x10
        events = locate_modifications(_sweep(world)[0])
        tos = [e for e in events if e.fieldname == "ip_tos"]
        assert tos[0].at_ttl == 2
        assert tos[0].before_ttl == 1

    def test_flags_rewriter_localized(self):
        world = build_linear_world()
        world.routers[1].rewrite_ip_flags = 0x0
        events = locate_modifications(_sweep(world)[0])
        flags = [e for e in events if e.fieldname == "ip_flags"]
        assert len(flags) == 1
        assert flags[0].at_ttl == 3

    def test_two_rewriters_two_events(self):
        world = build_linear_world()
        world.routers[1].rewrite_tos = 0x28
        world.routers[3].rewrite_ip_flags = 0x0
        events = locate_modifications(_sweep(world)[0])
        assert {e.fieldname for e in events} == {"ip_tos", "ip_flags"}

    def test_describe_renders(self):
        world = build_linear_world()
        world.routers[2].rewrite_tos = 0x28
        event = locate_modifications(_sweep(world)[0])[0]
        assert "ip_tos modified between hop 3" in event.describe()

    def test_silent_region_widens_the_bracket(self):
        world = build_linear_world(silent_routers=(3,))
        world.routers[2].rewrite_tos = 0x28
        events = locate_modifications(_sweep(world)[0])
        tos = [e for e in events if e.fieldname == "ip_tos"]
        # Hop 4 is silent, so the first quote showing the change is
        # hop 5's; the clean side is still hop 3.
        assert tos[0].at_ttl == 5
        assert tos[0].before_ttl == 3


class TestAggregation:
    def test_majority_vote_across_repetitions(self):
        world = build_linear_world()
        world.routers[2].rewrite_tos = 0x28
        sweeps = _sweep(world, repetitions=3)
        events = locate_modifications_aggregated(sweeps)
        assert any(e.fieldname == "ip_tos" for e in events)

    def test_clean_path_aggregates_to_nothing(self):
        world = build_linear_world()
        assert locate_modifications_aggregated(_sweep(world, 3)) == []
