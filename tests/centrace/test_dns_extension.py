"""The §8 DNS-injection extension, end to end."""

import pytest

from repro.core.cenprobe import CenProbe
from repro.core.centrace import CenTrace, CenTraceConfig
from repro.core.centrace.results import PROTO_DNS, TYPE_DNSINJECT, TYPE_NORMAL
from repro.geo.countries import build_dns_world
from repro.netmodel.dns import DNSMessage
from repro.services.dnsresolver import DNSResolver, synthetic_address


@pytest.fixture(scope="module")
def dns_world():
    return build_dns_world()


@pytest.fixture(scope="module")
def tracer(dns_world):
    return CenTrace(
        dns_world.sim,
        dns_world.remote_client,
        asdb=dns_world.asdb,
        config=CenTraceConfig(repetitions=2),
    )


class TestResolver:
    def test_zone_entry_resolved(self):
        resolver = DNSResolver(zone={"a.example": "192.0.2.1"})
        assert resolver.resolve("a.example") == "192.0.2.1"
        assert resolver.resolve("A.Example.") == "192.0.2.1"

    def test_recursive_synthetic_addresses_deterministic(self):
        resolver = DNSResolver()
        first = resolver.resolve("x.example")
        assert first == resolver.resolve("x.example")
        assert first == synthetic_address("x.example")

    def test_non_recursive_nxdomain(self):
        resolver = DNSResolver(recursive=False)
        assert resolver.resolve("x.example") is None


class TestDNSCenTrace:
    def test_onpath_injector_detected(self, dns_world, tracer):
        endpoint = dns_world.endpoints[0]  # behind the on-path injector
        result = tracer.measure(
            endpoint.ip, dns_world.test_domains[0], PROTO_DNS
        )
        assert result.blocked
        assert result.blocking_type == TYPE_DNSINJECT
        assert result.terminating_ttl < result.endpoint_distance
        assert result.in_path is False  # double answers observed
        assert result.blocking_hop.ip is not None

    def test_inpath_injector_detected(self, dns_world, tracer):
        endpoint = dns_world.endpoints[1]  # behind the in-path injector
        result = tracer.measure(
            endpoint.ip, dns_world.test_domains[0], PROTO_DNS
        )
        assert result.blocked
        assert result.blocking_type == TYPE_DNSINJECT
        assert result.in_path is True  # the query never reaches the resolver

    def test_clean_domain_resolves_normally(self, dns_world, tracer):
        endpoint = dns_world.endpoints[0]
        result = tracer.measure(endpoint.ip, "www.clean.example", PROTO_DNS)
        assert not result.blocked
        assert result.blocking_type == TYPE_NORMAL
        assert result.terminating_ttl == result.endpoint_distance

    def test_forged_answer_carries_fake_address(self, dns_world, tracer):
        endpoint = dns_world.endpoints[0]
        sweep = tracer.sweep(endpoint.ip, dns_world.test_domains[0], PROTO_DNS)
        response = sweep.terminating_response
        message = DNSMessage.from_bytes(response.payload)
        assert message.answers[0].address.startswith("198.18.")

    def test_fake_addresses_rotate(self, dns_world, tracer):
        endpoint = dns_world.endpoints[0]
        sweep = tracer.sweep(endpoint.ip, dns_world.test_domains[0], PROTO_DNS)
        addresses = set()
        for probe in sweep.probes:
            for response in probe.responses:
                if response.kind == "udp":
                    message = DNSMessage.from_bytes(response.payload)
                    if message.answers and message.answers[0].address.startswith("198.18."):
                        addresses.add(message.answers[0].address)
        assert len(addresses) >= 2  # the GFW-style rotating pool

    def test_txid_echoed_in_forged_answer(self, dns_world, tracer):
        # Forged answers must echo the query ID or resolvers'
        # clients would discard them.
        endpoint = dns_world.endpoints[0]
        probe = tracer._probe_dns(endpoint.ip, dns_world.test_domains[0], 64)
        sent_txid = None
        from repro.netmodel.packet import Packet

        sent = Packet.from_bytes(probe.sent_bytes)
        sent_txid = DNSMessage.from_bytes(sent.udp.payload).txid
        for response in probe.responses:
            if response.kind == "udp":
                assert DNSMessage.from_bytes(response.payload).txid == sent_txid

    def test_case_sensitive_engine_evaded_by_0x20(self, dns_world):
        # The in-path injector's engine is case-insensitive; flip it to
        # case-sensitive and a 0x20-encoded query sails through.
        from dataclasses import replace

        from repro.netmodel.dns import query
        from repro.netmodel.packet import udp_packet
        from repro.netsim.interfaces import InspectionContext

        device = next(
            d
            for d in dns_world.devices
            if d.name == dns_world.notes["inpath_injector"]
        )
        mixed = query("WwW.BlOcKeD.eXaMpLe").to_bytes()
        packet = udp_packet("10.0.0.1", "10.0.0.2", 40000, 53, payload=mixed)
        ctx = InspectionContext(clock=0, remaining_ttl=9, link_index=2)
        assert device.inspect(packet, ctx).acted  # insensitive engine
        strict = replace(device.quirks, dns_case_sensitive=True)
        original = device.quirks
        device.quirks = strict
        try:
            assert not device.inspect(packet, ctx).acted
        finally:
            device.quirks = original
