"""Edge-case locks for the hop-voting/attribution primitives.

These tests were written against the pre-extraction
``core/centrace/classify.py`` and re-run unchanged after the voting
code moved to ``core/centrace/attribution.py`` (with ``TtlLocalizer``
layered on top in ``repro.localize``): they pin the exact tie-breaking,
silence and no-ASDB behaviour the golden digests depend on.
"""

import pytest

from repro.core.centrace.classify import (
    _attribute,
    build_hop_distribution,
    most_likely_hop,
)
from repro.core.centrace.results import (
    HopInfo,
    ProbeObservation,
    ResponseSummary,
    TraceSweep,
)


def sweep_with_hops(hops):
    """A one-repetition sweep whose probe at each TTL saw ``hops[ttl]``.

    ``hops`` maps TTL -> hop IP (None = silence: the probe got no ICMP
    back, exactly like an ICMP-quiet router or a rate-limited hop).
    """
    probes = []
    for ttl in sorted(hops):
        ip = hops[ttl]
        responses = (
            [ResponseSummary(kind="icmp", src_ip=ip, arrival_ttl=60)]
            if ip is not None
            else []
        )
        probes.append(ProbeObservation(ttl=ttl, responses=responses))
    return TraceSweep(domain="control.example", protocol="http", probes=probes)


class TestMostLikelyHopTies:
    def test_tie_broken_by_first_observation(self):
        # Two repetitions disagree 1-1 at TTL 3. ``max`` over a dict is
        # insertion-ordered, so the hop seen in the *earlier* sweep wins
        # the vote — locked here because reorderings would silently move
        # blocking-hop attributions.
        sweeps = [
            sweep_with_hops({3: "10.0.0.3"}),
            sweep_with_hops({3: "10.0.9.9"}),
        ]
        distribution = build_hop_distribution(sweeps)
        assert distribution == {3: {"10.0.0.3": 1, "10.0.9.9": 1}}
        assert most_likely_hop(distribution, 3) == "10.0.0.3"

    def test_majority_beats_first_observation(self):
        sweeps = [
            sweep_with_hops({3: "10.0.0.3"}),
            sweep_with_hops({3: "10.0.9.9"}),
            sweep_with_hops({3: "10.0.9.9"}),
        ]
        assert most_likely_hop(build_hop_distribution(sweeps), 3) == "10.0.9.9"

    def test_silence_ties_with_response(self):
        # 1-1 between silence ("") and a real hop: silence was inserted
        # first, wins the max, and is reported as None.
        sweeps = [
            sweep_with_hops({4: None}),
            sweep_with_hops({4: "10.0.0.4"}),
        ]
        assert most_likely_hop(build_hop_distribution(sweeps), 4) is None


class TestAllTimeoutSweeps:
    def test_all_silent_distribution_votes_none(self):
        sweeps = [sweep_with_hops({1: None, 2: None}) for _ in range(3)]
        distribution = build_hop_distribution(sweeps)
        assert distribution == {1: {"": 3}, 2: {"": 3}}
        assert most_likely_hop(distribution, 1) is None
        assert most_likely_hop(distribution, 2) is None

    def test_empty_sweep_list(self):
        assert build_hop_distribution([]) == {}
        assert most_likely_hop({}, 1) is None

    def test_missing_ttl_is_none(self):
        distribution = build_hop_distribution([sweep_with_hops({1: "10.0.0.1"})])
        assert most_likely_hop(distribution, 7) is None


class _StubMeta:
    asn = 64500
    as_name = "StubNet"
    country = "AZ"


class _StubASDB:
    def __init__(self, known):
        self.known = known

    def lookup(self, ip):
        return _StubMeta() if ip in self.known else None


class TestAttributeEdges:
    def test_no_asdb_keeps_bare_hop(self):
        hop = _attribute("10.0.0.5", 5, None)
        assert hop == HopInfo(ttl=5, ip="10.0.0.5")
        assert hop.asn is None and hop.as_name is None and hop.country is None

    def test_none_ip_never_looked_up(self):
        class Exploding:
            def lookup(self, ip):  # pragma: no cover - must not run
                raise AssertionError("lookup called for silent hop")

        assert _attribute(None, 5, Exploding()) == HopInfo(ttl=5, ip=None)

    def test_unknown_ip_stays_unattributed(self):
        hop = _attribute("10.0.0.5", 5, _StubASDB(known=()))
        assert hop == HopInfo(ttl=5, ip="10.0.0.5")

    def test_known_ip_fills_metadata(self):
        hop = _attribute("10.0.0.5", 5, _StubASDB(known=("10.0.0.5",)))
        assert (hop.asn, hop.as_name, hop.country) == (64500, "StubNet", "AZ")


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
