"""CenTrace scenario tests: the five behaviours of Figure 2.

(A) control domain maps the path; (B) injected terminating response;
(C) packet-drop timeouts; (D) on-path device seen via RST + ICMP at
the same hop; (E) TTL-copying injector producing "Past E".
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import (
    BLOCKED_DOMAIN,
    CONTROL_DOMAIN,
    ENDPOINT_IP,
    OK_DOMAIN,
    build_linear_world,
    make_profile_device,
)

from repro.core.centrace import (
    CenTrace,
    CenTraceConfig,
    LOC_AT_E,
    LOC_PAST_E,
    LOC_PATH,
    PROTO_HTTP,
    PROTO_TLS,
    TYPE_HTTP,
    TYPE_NORMAL,
    TYPE_RST,
    TYPE_TIMEOUT,
)
from repro.devices.vendors import BY_DPI, FORTINET, KZ_STATE, TSPU_TTLCOPY
from repro.services.webserver import FilteringWebServer


def _tracer(world, **kwargs) -> CenTrace:
    config = CenTraceConfig(repetitions=kwargs.pop("repetitions", 2), **kwargs)
    return CenTrace(world.sim, world.client, asdb=world.asdb, config=config)


class TestScenarioA_ControlPath:
    def test_control_sweep_maps_every_hop(self):
        world = build_linear_world()
        sweep = _tracer(world).sweep(ENDPOINT_IP, CONTROL_DOMAIN, PROTO_HTTP)
        hops = sweep.hop_ips()
        for i, router in enumerate(world.routers, start=1):
            assert hops[i] == router.ip
        assert sweep.terminating_type == TYPE_NORMAL
        assert sweep.terminating_ttl == world.endpoint_distance

    def test_unblocked_measure_not_blocked(self):
        world = build_linear_world()
        result = _tracer(world).measure(ENDPOINT_IP, OK_DOMAIN, PROTO_HTTP)
        assert not result.blocked
        assert result.valid
        assert result.endpoint_distance == world.endpoint_distance


class TestScenarioB_Injection:
    def test_rst_injector_classified(self):
        device = make_profile_device(FORTINET)
        world = build_linear_world(device=device, device_link=2)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_TLS)
        assert result.blocked
        assert result.blocking_type == TYPE_RST
        assert result.terminating_ttl == 3
        assert result.blocking_hop.ip == world.routers[2].ip
        assert result.location_class == LOC_PATH

    def test_blockpage_injector_classified_http(self):
        device = make_profile_device(FORTINET)
        world = build_linear_world(device=device, device_link=2)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.blocking_type == TYPE_HTTP
        assert result.blockpage_fingerprint == "fortinet_fortiguard"
        assert result.in_path is True

    def test_injected_packet_features_extracted(self):
        device = make_profile_device(FORTINET)
        world = build_linear_world(device=device, device_link=2)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_TLS)
        assert result.injected_tcp_window == 8192
        assert result.injected_initial_ttl == 64
        assert result.injected_ip_id == 0x0100


class TestScenarioC_Drops:
    def test_drop_device_timeout_at_link(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(device=device, device_link=2)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.blocked
        assert result.blocking_type == TYPE_TIMEOUT
        assert result.terminating_ttl == 3
        assert result.blocking_hop.ip == world.routers[2].ip
        assert result.in_path is True

    def test_control_traces_stay_clean(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(device=device, device_link=2)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.valid
        for sweep in result.sweeps_control:
            assert sweep.terminating_type == TYPE_NORMAL

    def test_hops_from_endpoint(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(n_routers=6, device=device, device_link=1)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.endpoint_distance == 7
        assert result.hops_from_endpoint == 5


class TestScenarioD_OnPath:
    def test_onpath_detected(self):
        device = make_profile_device(BY_DPI)
        world = build_linear_world(device=device, device_link=2)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.blocked
        assert result.blocking_type == TYPE_RST
        assert result.in_path is False
        assert result.terminating_ttl == 3

    def test_onpath_with_silent_next_hop_misclassified_in_path(self):
        # The false-positive mode the paper documents in §4.1: if the
        # hop past the device never sends ICMP, the injected RST is the
        # only signal and the device looks in-path.
        device = make_profile_device(BY_DPI)
        world = build_linear_world(
            device=device, device_link=2, silent_routers=(2,)
        )
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.blocked
        assert result.in_path is True


class TestScenarioE_TTLCopy:
    def test_past_e_detected_and_corrected(self):
        device = make_profile_device(TSPU_TTLCOPY)
        world = build_linear_world(n_routers=4, device=device, device_link=3)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.blocked
        assert result.blocking_type == TYPE_RST
        assert result.ttl_copy_detected
        # Device sits on the link to router index 3 => distance 3;
        # the RST first survives at probe TTL 7 (= 2*3 + 1) which is
        # past the endpoint at distance 5.
        assert result.terminating_ttl == 7
        assert result.location_class == LOC_PAST_E
        # Three routers sit before the device; the blocking hop (the
        # node its link leads into, as for droppers) is hop 4.
        assert result.corrected_device_distance == 4
        assert result.blocking_hop.ip == world.routers[3].ip


class TestAtE:
    def test_endpoint_local_drop_classified_at_e(self):
        server = FilteringWebServer(
            [OK_DOMAIN], [BLOCKED_DOMAIN], mode="drop"
        )
        world = build_linear_world(server=server)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.blocked
        assert result.blocking_type == TYPE_TIMEOUT
        assert result.location_class == LOC_AT_E
        assert result.blocking_hop.ip == ENDPOINT_IP
        assert result.in_path is None

    def test_endpoint_local_reset_classified_at_e(self):
        server = FilteringWebServer(
            [OK_DOMAIN], [BLOCKED_DOMAIN], mode="reset"
        )
        world = build_linear_world(server=server)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.blocking_type == TYPE_RST
        assert result.location_class == LOC_AT_E


class TestRobustness:
    def test_loss_tolerated_by_retries(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(device=device, device_link=2, loss_rate=0.02)
        result = _tracer(world, repetitions=3).measure(
            ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP
        )
        assert result.blocked
        assert result.terminating_ttl == 3

    def test_quote_delta_collected_at_blocking_hop(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(device=device, device_link=2)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.quote_delta is not None
        assert not result.quote_delta.tos_changed

    def test_tos_rewriter_before_device_visible_in_quote(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(device=device, device_link=3)
        world.routers[0].rewrite_tos = 0x28
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.quote_delta.tos_changed

    def test_asn_attribution(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(device=device, device_link=2)
        world.asdb.register(64503, "Blocking AS", "XX")
        # Rebuild the router IP mapping in the asdb for attribution.
        # (The helper's routers are not asdb-allocated, so attribution
        # is None — verify the tracer handles that gracefully.)
        result = _tracer(world).measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert result.blocking_hop.asn is None
