"""From-scratch CART / random forest: correctness and MDI sanity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.forest import (
    DecisionTreeClassifier,
    RandomForestClassifier,
    cross_validate_forest,
    gini,
)


def _separable(n=60, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 4))
    y = (X[:, 1] > 0).astype(int)
    X[:, 0] = rng.normal(size=n)  # pure noise column
    return X, y


class TestGini:
    def test_pure_labels_zero(self):
        assert gini(np.array([1, 1, 1])) == 0.0

    def test_balanced_binary_half(self):
        assert gini(np.array([0, 1, 0, 1])) == pytest.approx(0.5)

    def test_empty_zero(self):
        assert gini(np.array([], dtype=int)) == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=50))
    def test_bounds(self, labels):
        value = gini(np.array(labels))
        assert 0.0 <= value <= 0.75


class TestDecisionTree:
    def test_fits_separable_data_perfectly(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_importance_concentrates_on_signal(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.feature_importances_[1] > 0.9
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_max_depth_limits_tree(self):
        X, y = _separable()
        stump = DecisionTreeClassifier(max_depth=0).fit(X, y)
        majority = np.bincount(y).argmax()
        assert (stump.predict(X) == majority).all()

    def test_constant_features_fall_back_to_majority(self):
        X = np.zeros((10, 3))
        y = np.array([0] * 7 + [1] * 3)
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == 0).all()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_one(np.zeros(3))


class TestRandomForest:
    def test_high_train_accuracy(self):
        X, y = _separable(100)
        forest = RandomForestClassifier(n_estimators=20, seed=1).fit(X, y)
        assert forest.score(X, y) >= 0.95

    def test_importances_normalized_and_ranked(self):
        X, y = _separable(100)
        forest = RandomForestClassifier(n_estimators=20, seed=1).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0, abs=0.05)
        assert np.argmax(forest.feature_importances_) == 1

    def test_deterministic_given_seed(self):
        X, y = _separable(50)
        a = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y)
        assert (a.predict(X) == b.predict(X)).all()
        assert np.allclose(a.feature_importances_, b.feature_importances_)

    def test_multiclass(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(90, 3))
        y = np.digitize(X[:, 2], [-0.5, 0.5])
        forest = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        assert forest.score(X, y) >= 0.9

    def test_max_features_all(self):
        X, y = _separable(40)
        forest = RandomForestClassifier(
            n_estimators=5, max_features="all", seed=0
        ).fit(X, y)
        assert forest.score(X, y) >= 0.9


class TestCrossValidation:
    def test_repeated_kfold_shape(self):
        X, y = _separable(50)
        result = cross_validate_forest(
            X, y, folds=5, repeats=3, n_estimators=10, seed=0
        )
        assert len(result.accuracies) == 15  # §7.2's "15 repetitions"
        assert result.importances.shape == (15, 4)

    def test_generalizes_on_separable_data(self):
        X, y = _separable(80)
        result = cross_validate_forest(
            X, y, folds=5, repeats=1, n_estimators=10, seed=0
        )
        assert result.mean_accuracy >= 0.9

    def test_mean_importances_prefer_signal(self):
        X, y = _separable(80)
        result = cross_validate_forest(
            X, y, folds=5, repeats=1, n_estimators=10, seed=0
        )
        assert np.argmax(result.mean_importances()) == 1
