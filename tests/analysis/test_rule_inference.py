"""Autosonda-style rule inference, validated against ground truth.

Each test fuzzes a device with known quirks through the simulator and
checks that the inferred decision model matches the configuration the
device was actually built with.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import (
    BLOCKED_DOMAIN,
    CONTROL_DOMAIN,
    ENDPOINT_IP,
    build_linear_world,
    make_profile_device,
)

from repro.analysis.rule_inference import (
    HOST_KEYWORD_SCAN,
    HOST_STRUCTURAL,
    STYLE_EXACT,
    STYLE_KEYWORD,
    STYLE_SUFFIX,
    VERSION_NEEDS_SLASH,
    VERSION_NOT_CHECKED,
    VERSION_STRICT,
    infer_rules,
)
from repro.core.cenfuzz import CenFuzz
from repro.devices.vendors import (
    CISCO,
    FORTINET,
    KERIO,
    KZ_STATE,
    MIKROTIK,
    PALO_ALTO,
    TSPU_INPATH,
)


def _fuzz(profile, protocol="http", **device_kwargs):
    device = make_profile_device(profile, **device_kwargs)
    world = build_linear_world(device=device, device_link=2)
    fuzzer = CenFuzz(world.sim, world.client)
    return fuzzer.run_endpoint(
        ENDPOINT_IP, BLOCKED_DOMAIN, protocol, CONTROL_DOMAIN
    )


class TestHTTPInference:
    def test_kz_state_model(self):
        model = infer_rules(_fuzz(KZ_STATE, url_scope=True))
        assert model.trigger_methods == frozenset({"GET", "POST", "PUT"})
        assert model.version_validation == VERSION_NEEDS_SLASH
        assert model.host_extraction == HOST_STRUCTURAL
        assert model.url_scoped is True

    def test_mikrotik_get_only(self):
        model = infer_rules(_fuzz(MIKROTIK))
        assert model.trigger_methods == frozenset({"GET"})
        assert model.version_validation == VERSION_NOT_CHECKED
        assert model.rule_style == STYLE_EXACT

    def test_kerio_validates_versions(self):
        model = infer_rules(_fuzz(KERIO))
        assert model.version_validation == VERSION_STRICT
        assert model.rule_style == STYLE_EXACT

    def test_paloalto_keyword_engine(self):
        model = infer_rules(_fuzz(PALO_ALTO))
        assert model.host_extraction == HOST_KEYWORD_SCAN
        assert model.inspects_unknown_methods
        assert model.rule_style == STYLE_KEYWORD

    def test_fortinet_suffix_rules(self):
        model = infer_rules(_fuzz(FORTINET))
        assert model.rule_style == STYLE_SUFFIX
        assert "PATCH" not in model.trigger_methods

    def test_cisco_patch_tracked(self):
        model = infer_rules(_fuzz(CISCO, url_scope=False))
        assert "PATCH" in model.trigger_methods
        assert model.version_validation == VERSION_NOT_CHECKED

    def test_exact_rule_style_detected(self):
        model = infer_rules(_fuzz(KZ_STATE, rule_kind="exact"))
        assert model.rule_style == STYLE_EXACT

    def test_unblocked_report_yields_empty_model(self):
        device = make_profile_device(KZ_STATE, domains=("unrelated.example",))
        world = build_linear_world(device=device, device_link=2)
        fuzzer = CenFuzz(world.sim, world.client)
        report = fuzzer.run_endpoint(
            ENDPOINT_IP, BLOCKED_DOMAIN, "http", CONTROL_DOMAIN
        )
        model = infer_rules(report)
        assert model.trigger_methods == frozenset()
        assert "normal" in model.evidence


class TestTLSInference:
    def test_suffix_sni_rules(self):
        model = infer_rules(_fuzz(FORTINET, protocol="tls"))
        assert model.protocol == "tls"
        assert model.rule_style == STYLE_SUFFIX
        assert not model.fragile_tls_versions

    def test_fragile_tls_version_detected(self):
        model = infer_rules(_fuzz(TSPU_INPATH, protocol="tls"))
        # TSPU's engine cannot parse TLS 1.0-only offers.
        assert "TLS 1.0" in model.fragile_tls_versions

    def test_fragile_cipher_detected(self):
        model = infer_rules(_fuzz(KERIO, protocol="tls"))
        assert "TLS_RSA_WITH_RC4_128_SHA" in model.fragile_ciphers

    def test_summary_renders(self):
        model = infer_rules(_fuzz(FORTINET, protocol="tls"))
        assert "rule=suffix" in model.summary()
        http_model = infer_rules(_fuzz(FORTINET))
        assert "methods={" in http_model.summary()
