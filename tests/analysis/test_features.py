"""Feature extraction (Table 3)."""

import math

import numpy as np
import pytest

from repro.analysis.features import (
    EndpointFeatures,
    all_feature_names,
    drop_empty_columns,
    extract_features,
    feature_matrix,
    strategy_feature_names,
)
from repro.core.centrace.results import (
    CenTraceResult,
    TYPE_HTTP,
    TYPE_RST,
    TYPE_TIMEOUT,
)
from repro.netmodel.icmp import QuoteDelta


def _trace(
    blocked=True,
    blocking_type=TYPE_TIMEOUT,
    protocol="http",
    in_path=True,
    **kwargs,
) -> CenTraceResult:
    result = CenTraceResult(
        endpoint_ip="10.0.0.9",
        endpoint_asn=64500,
        test_domain="www.blocked.example",
        protocol=protocol,
        blocked=blocked,
        blocking_type=blocking_type,
        in_path=in_path,
    )
    for key, value in kwargs.items():
        setattr(result, key, value)
    return result


class TestExtraction:
    def test_names_cover_strategies_and_base(self):
        names = all_feature_names()
        assert "CensorResponse" in names
        assert "Get Word Alt." in names
        assert "Normal" in names
        assert len(names) == len(set(names))

    def test_unblocked_endpoint_all_missing(self):
        features = extract_features("10.0.0.9", [_trace(blocked=False)])
        assert all(math.isnan(v) for v in features.values.values())

    def test_censor_response_combines_protocols(self):
        http = _trace(blocking_type=TYPE_HTTP, protocol="http")
        tls = _trace(blocking_type=TYPE_RST, protocol="tls")
        features = extract_features("10.0.0.9", [http, tls])
        # HTTP code 3, TLS code 1 -> 4*3 + 1.
        assert features.values["CensorResponse"] == 13.0

    def test_censor_response_single_protocol_mirrors(self):
        features = extract_features("10.0.0.9", [_trace(blocking_type=TYPE_RST)])
        assert features.values["CensorResponse"] == 4.0 * 1 + 1

    def test_injected_fields_copied(self):
        trace = _trace(
            blocking_type=TYPE_RST,
            injected_tcp_flags=4,
            injected_ip_id=0x1234,
            injected_ip_flags=2,
            injected_tcp_window=8192,
            injected_initial_ttl=64,
            injected_ttl=60,
            injected_tcp_options=(2, 4),
        )
        features = extract_features("10.0.0.9", [trace])
        assert features.values["InjectedIPID"] == 0x1234
        assert features.values["InjectedTCPWindow"] == 8192
        assert features.values["InjectedIPTTL"] == 64
        assert features.values["InjectedTCPOptionCount"] == 2

    def test_injected_zero_values_preserved(self):
        # IP-ID 0 and window 0 are genuine observations (some injectors
        # always send IP-ID 0); they must survive as 0.0, not be
        # conflated with "not observed".
        trace = _trace(
            blocking_type=TYPE_RST,
            injected_tcp_flags=4,
            injected_ip_id=0,
            injected_ip_flags=0,
            injected_tcp_window=0,
        )
        features = extract_features("10.0.0.9", [trace])
        assert features.values["InjectedIPID"] == 0.0
        assert features.values["InjectedIPFlags"] == 0.0
        assert features.values["InjectedTCPWindow"] == 0.0

    def test_injected_unobserved_fields_are_missing(self):
        # An injection that exposed TCP flags but not IP-ID/flags/window
        # leaves those features NaN (missing) for median imputation.
        trace = _trace(blocking_type=TYPE_RST, injected_tcp_flags=4)
        features = extract_features("10.0.0.9", [trace])
        assert features.values["InjectedTCPFlags"] == 4.0
        assert math.isnan(features.values["InjectedIPID"])
        assert math.isnan(features.values["InjectedIPFlags"])
        assert math.isnan(features.values["InjectedTCPWindow"])

    def test_unknown_fuzz_strategy_not_widened(self):
        # A fuzz report naming a strategy this build doesn't know (e.g.
        # older saved data) must not grow the feature dict beyond
        # all_feature_names() — that would desync matrix columns.
        from repro.core.cenfuzz.runner import (
            EndpointFuzzReport,
            FuzzProbeOutcome,
            PermutationResult,
        )

        report = EndpointFuzzReport(
            endpoint_ip="10.0.0.9",
            test_domain="www.blocked.example",
            protocol="http",
        )
        report.results.append(
            PermutationResult(
                endpoint_ip="10.0.0.9",
                test_domain="www.blocked.example",
                strategy="Retired Strategy",
                label="retired[0]",
                protocol="http",
                normal_blocked=True,
                test=FuzzProbeOutcome("response"),
                control=FuzzProbeOutcome("response"),
                successful=True,
            )
        )
        features = extract_features(
            "10.0.0.9", [_trace()], fuzz_reports=[report]
        )
        assert "Retired Strategy" not in features.values
        assert set(features.values) == set(all_feature_names())

    def test_quote_delta_features(self):
        trace = _trace(
            quote_delta=QuoteDelta(tos_changed=True, follows_rfc792=True)
        )
        features = extract_features("10.0.0.9", [trace])
        assert features.values["IPTOSChanged"] == 1.0
        assert features.values["QuoteRFC792"] == 1.0
        assert features.values["IPFlagsChanged"] == 0.0

    def test_on_path_encoding(self):
        features = extract_features("10.0.0.9", [_trace(in_path=False)])
        assert features.values["OnPath"] == 1.0
        features2 = extract_features("10.0.0.9", [_trace(in_path=True)])
        assert features2.values["OnPath"] == 0.0

    def test_label_prefers_blockpage(self):
        from repro.core.cenprobe.scanner import ProbeReport

        probe = ProbeReport(ip="10.0.0.3", reachable=True, vendor="Cisco")
        features = extract_features(
            "10.0.0.9", [_trace()], probe_report=probe, blockpage_vendor="Fortinet"
        )
        assert features.label == "Fortinet"
        assert features.label_source == "blockpage"

    def test_label_falls_back_to_banner(self):
        from repro.core.cenprobe.scanner import ProbeReport

        probe = ProbeReport(ip="10.0.0.3", reachable=True, vendor="Cisco")
        features = extract_features("10.0.0.9", [_trace()], probe_report=probe)
        assert features.label == "Cisco"
        assert features.label_source == "banner"

    def test_open_ports_encoded(self):
        from repro.core.cenprobe.scanner import ProbeReport

        probe = ProbeReport(
            ip="10.0.0.3", reachable=True, open_ports=[22, 443]
        )
        features = extract_features("10.0.0.9", [_trace()], probe_report=probe)
        assert features.values["OpenPortCount"] == 2.0
        assert features.values["Port22Open"] == 1.0
        assert features.values["Port80Open"] == 0.0


class TestMatrix:
    def test_matrix_shape_and_labels(self):
        features = [
            extract_features("10.0.0.1", [_trace()], blockpage_vendor="A"),
            extract_features("10.0.0.2", [_trace()]),
        ]
        names, X, labels = feature_matrix(features)
        assert X.shape == (2, len(names))
        assert labels == ["A", None]

    def test_drop_empty_columns(self):
        features = [extract_features("10.0.0.1", [_trace()])]
        names, X, _ = feature_matrix(features)
        kept, X2 = drop_empty_columns(list(names), X)
        assert X2.shape[1] == len(kept) < len(names)
        assert not np.all(np.isnan(X2), axis=0).any()

    def test_vector_order_matches_names(self):
        features = extract_features("10.0.0.1", [_trace(blocking_type=TYPE_RST)])
        names = ["CensorResponse"]
        assert features.vector(names)[0] == 5.0
