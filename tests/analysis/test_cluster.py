"""The §7 clustering pipeline on synthetic device populations."""

import numpy as np
import pytest

from repro.analysis.cluster import (
    cluster_endpoints,
    rank_features,
    vendor_correlations,
)
from repro.analysis.features import EndpointFeatures, all_feature_names


def _endpoint(ip, vendor, censor, window, fuzz, country="AA"):
    """Build a synthetic feature vector with a clear vendor signature."""
    values = {name: float("nan") for name in all_feature_names()}
    values["CensorResponse"] = censor
    values["InjectedTCPWindow"] = window
    values["Get Word Alt."] = fuzz
    values["Path Alt."] = fuzz / 2
    values["Normal"] = 1.0
    return EndpointFeatures(
        endpoint_ip=ip, country=country, values=values, label=vendor
    )


def _population():
    population = []
    for i in range(8):
        population.append(_endpoint(f"10.0.1.{i}", "VendorA", 1.0, 8192, 0.6, "AA"))
    for i in range(8):
        population.append(_endpoint(f"10.0.2.{i}", "VendorB", 0.0, 0, 0.1, "BB"))
    for i in range(8):
        population.append(_endpoint(f"10.0.3.{i}", "VendorC", 13.0, 1400, 0.9, "CC"))
    return population


class TestRankFeatures:
    def test_ranks_discriminative_features_first(self):
        report = rank_features(_population(), folds=4, repeats=1, n_estimators=10)
        top = report.top(3)
        assert {"CensorResponse", "InjectedTCPWindow", "Get Word Alt."} & set(top)

    def test_cv_accuracy_high_for_separable_vendors(self):
        report = rank_features(_population(), folds=4, repeats=1, n_estimators=10)
        assert report.cv.mean_accuracy >= 0.9

    def test_requires_enough_labels(self):
        with pytest.raises(ValueError):
            rank_features([_endpoint("10.0.0.1", "A", 1.0, 1, 0.5)])

    def test_ranked_returns_all_used_features(self):
        report = rank_features(_population(), folds=4, repeats=1, n_estimators=5)
        ranked_names = [name for name, _ in report.ranked()]
        assert set(ranked_names) == set(report.names)


class TestClusterEndpoints:
    def test_vendors_form_distinct_clusters(self):
        report = cluster_endpoints(_population(), eps=1.2)
        assert report.result.n_clusters == 3
        purity = report.vendor_purity()
        assert all(purity.values())

    def test_eps_none_estimates(self):
        report = cluster_endpoints(_population(), eps=None)
        assert report.result.eps > 0
        assert report.result.n_clusters >= 1

    def test_composition_counts_countries(self):
        report = cluster_endpoints(_population(), eps=1.2)
        composition = dict(report.composition())
        sizes = [sum(counter.values()) for counter in composition.values()]
        assert sum(sizes) == 24

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            cluster_endpoints([])

    def test_top_features_subset_used(self):
        report = cluster_endpoints(_population(), eps=1.2, top_features=3)
        assert len(report.used_feature_names) <= 3


class TestVendorCorrelations:
    def test_within_vendor_perfect_for_identical_devices(self):
        correlations = vendor_correlations(_population())
        assert correlations[("VendorA", "VendorA")][0] == pytest.approx(1.0)
        assert correlations[("VendorB", "VendorB")][0] == pytest.approx(1.0)

    def test_cross_vendor_weaker(self):
        correlations = vendor_correlations(_population())
        within = correlations[("VendorA", "VendorA")][0]
        cross = correlations[("VendorA", "VendorB")][0]
        assert cross < within

    def test_single_member_vendor_skipped_within(self):
        population = _population() + [_endpoint("10.0.4.1", "Lonely", 2.0, 99, 0.3)]
        correlations = vendor_correlations(population)
        assert ("Lonely", "Lonely") not in correlations
        assert any(pair[1] == "Lonely" or pair[0] == "Lonely" for pair in correlations)
