"""DBSCAN and k-NN epsilon estimation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dbscan import (
    NOISE,
    dbscan,
    estimate_eps,
    estimate_eps_info,
    k_distance_curve,
)


def _blobs(centers, n=10, spread=0.1, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    for center in centers:
        points.append(rng.normal(loc=center, scale=spread, size=(n, len(center))))
    return np.vstack(points)


class TestDBSCAN:
    def test_two_blobs_two_clusters(self):
        X = _blobs([(0, 0), (10, 10)])
        result = dbscan(X, eps=1.0, min_samples=3)
        assert result.n_clusters == 2
        # Every point in the same blob shares a label.
        assert len(set(result.labels[:10])) == 1
        assert len(set(result.labels[10:])) == 1
        assert result.labels[0] != result.labels[10]

    def test_isolated_point_is_noise(self):
        X = np.vstack([_blobs([(0, 0)]), [[100.0, 100.0]]])
        result = dbscan(X, eps=1.0, min_samples=3)
        assert result.labels[-1] == NOISE
        assert len(result.noise_indices()) == 1

    def test_everything_noise_with_tiny_eps(self):
        X = _blobs([(0, 0)], spread=1.0)
        result = dbscan(X, eps=1e-6, min_samples=3)
        assert result.n_clusters == 0
        assert (result.labels == NOISE).all()

    def test_one_cluster_with_huge_eps(self):
        X = _blobs([(0, 0), (5, 5)])
        result = dbscan(X, eps=100.0, min_samples=3)
        assert result.n_clusters == 1

    def test_min_samples_respected(self):
        # A pair of nearby points cannot form a cluster at min_samples=3.
        X = np.array([[0.0, 0.0], [0.1, 0.0], [50.0, 50.0], [50.1, 50.0]])
        result = dbscan(X, eps=1.0, min_samples=3)
        assert result.n_clusters == 0

    def test_cluster_indices(self):
        X = _blobs([(0, 0), (10, 10)])
        result = dbscan(X, eps=1.0, min_samples=3)
        indices = result.cluster_indices(result.labels[0])
        assert set(indices) == set(range(10))

    def test_identical_points_cluster(self):
        X = np.zeros((5, 3))
        result = dbscan(X, eps=0.5, min_samples=3)
        assert result.n_clusters == 1

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_labels_partition_points(self, seed):
        X = _blobs([(0, 0), (8, 8)], seed=seed)
        result = dbscan(X, eps=1.0, min_samples=3)
        assert len(result.labels) == len(X)
        assert set(result.labels.tolist()) <= set(range(-1, len(X)))


class TestEpsEstimation:
    def test_estimate_scales_with_spread(self):
        tight = estimate_eps(_blobs([(0, 0)], spread=0.05), k=3)
        loose = estimate_eps(_blobs([(0, 0)], spread=1.0), k=3)
        assert loose > tight

    def test_estimated_eps_recovers_blobs(self):
        X = _blobs([(0, 0), (10, 10)], spread=0.2)
        eps = estimate_eps(X, k=3) * 2
        result = dbscan(X, eps=eps, min_samples=3)
        assert result.n_clusters == 2

    def test_tiny_dataset_raises(self):
        # n <= k has no k-th neighbor: no estimate exists, and the old
        # silent 1.0 fallback hid that the ε was arbitrary.
        with pytest.raises(ValueError, match="k=3"):
            estimate_eps(np.zeros((2, 2)), k=3)

    def test_tiny_dataset_info_records_fallback(self):
        eps, info = estimate_eps_info(np.zeros((2, 2)), k=3)
        assert eps == 1.0
        assert info["fallback"] == "too_few_points"
        assert info["n_points"] == 2 and info["k"] == 3

    def test_duplicate_points_info_records_fallback(self):
        # All-coincident points give zero k-NN distances; ε is clamped
        # to a positive floor and the degeneracy is surfaced.
        eps, info = estimate_eps_info(np.zeros((6, 2)), k=3)
        assert eps > 0.0
        assert info["fallback"] == "duplicate_points"

    def test_healthy_estimate_has_no_fallback(self):
        X = _blobs([(0, 0)], spread=0.2)
        eps, info = estimate_eps_info(X, k=3)
        assert info["fallback"] is None
        assert eps == pytest.approx(estimate_eps(X, k=3))

    def test_k_distance_curve_sorted(self):
        curve = k_distance_curve(_blobs([(0, 0)], n=20), k=3)
        assert (np.diff(curve) >= 0).all()
        assert len(curve) == 20

    def test_k_distance_curve_tiny_dataset_raises(self):
        with pytest.raises(ValueError, match="k=3"):
            k_distance_curve(np.zeros((3, 2)), k=3)
