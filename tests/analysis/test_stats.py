"""Imputation, scaling and Spearman helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    impute_median,
    pairwise_group_correlation,
    spearman_pair,
    zscore,
)


class TestImputation:
    def test_nan_replaced_with_column_median(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0], [5.0, 8.0]])
        imputed = impute_median(X)
        assert imputed[0, 1] == 6.0
        assert not np.isnan(imputed).any()

    def test_all_nan_column_becomes_zero(self):
        X = np.array([[np.nan], [np.nan]])
        assert (impute_median(X) == 0).all()

    def test_original_untouched(self):
        X = np.array([[np.nan, 1.0]])
        impute_median(X)
        assert np.isnan(X[0, 0])


class TestZScore:
    def test_standardizes_columns(self):
        X = np.array([[1.0, 10.0], [3.0, 20.0], [5.0, 30.0]])
        Z = zscore(X)
        assert np.allclose(Z.mean(axis=0), 0)
        assert np.allclose(Z.std(axis=0), 1)

    def test_constant_column_zeroed(self):
        X = np.array([[5.0, 1.0], [5.0, 2.0]])
        Z = zscore(X)
        assert (Z[:, 0] == 0).all()


class TestSpearman:
    def test_identical_vectors_perfect(self):
        assert spearman_pair([1, 2, 3], [1, 2, 3]) == (1.0, 0.0)

    def test_identical_constant_vectors_perfect(self):
        # §7.4 reports r_s = 1.00 for devices with exactly equal
        # features even when the features are constant.
        assert spearman_pair([2, 2, 2], [2, 2, 2]) == (1.0, 0.0)

    def test_one_constant_vector_zero(self):
        r, p = spearman_pair([1, 1, 1], [1, 2, 3])
        assert r == 0.0 and p == 1.0

    def test_monotonic_relationship(self):
        r, _ = spearman_pair([1, 2, 3, 4], [10, 100, 1000, 10000])
        assert r == pytest.approx(1.0)

    def test_anticorrelation(self):
        r, _ = spearman_pair([1, 2, 3, 4], [4, 3, 2, 1])
        assert r == pytest.approx(-1.0)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=4,
            max_size=20,
        )
    )
    def test_bounds(self, values):
        other = list(reversed(values))
        r, p = spearman_pair(values, other)
        assert -1.0 <= r <= 1.0
        assert 0.0 <= p <= 1.0


class TestGroupCorrelation:
    def test_within_group_identical_rows(self):
        X = np.array([[1.0, 2.0, 3.0]] * 3)
        r, p = pairwise_group_correlation(X, [0, 1, 2])
        assert r == 1.0 and p == 0.0

    def test_between_groups(self):
        X = np.array(
            [[1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.0, 4.0], [4.0, 3.0, 2.0, 1.0]]
        )
        r, _ = pairwise_group_correlation(X, [0, 1], [2])
        assert r == pytest.approx(-1.0)

    def test_singleton_group_is_nan(self):
        # One row has no distinct pair: there is no correlation to
        # average, and pretending r_s = 1.0 would report a perfectly
        # self-similar "vendor" from a single device.
        X = np.zeros((1, 3))
        r, p = pairwise_group_correlation(X, [0])
        assert np.isnan(r) and np.isnan(p)

    def test_overlapping_groups_exclude_self_pairs(self):
        # Row 0 appears in both groups. Its self-pair (r_s = 1.0) must
        # not enter the average: the true cross-pairs are (0,1), (0,2)
        # and (1,2) — hand-computed r_s of -1, -1 and +1 → mean -1/3.
        X = np.array(
            [[1.0, 2.0, 3.0, 4.0], [4.0, 3.0, 2.0, 1.0], [8.0, 6.0, 4.0, 2.0]]
        )
        r, _ = pairwise_group_correlation(X, [0, 1], [0, 2])
        assert r == pytest.approx(-1.0 / 3.0)

    def test_overlapping_groups_count_each_pair_once(self):
        # Both rows sit in both groups, so the unordered pair (0,1) is
        # reachable twice; it must still contribute a single sample
        # (the average over one pair equals that pair's r_s exactly).
        X = np.array([[1.0, 2.0, 3.0, 4.0], [4.0, 3.0, 2.0, 1.0]])
        r, p = pairwise_group_correlation(X, [0, 1], [0, 1])
        r_single, p_single = spearman_pair(X[0], X[1])
        assert r == pytest.approx(r_single)
        assert p == pytest.approx(p_single)

    def test_fully_overlapping_singletons_nan(self):
        # Groups that overlap down to a single shared row leave no
        # distinct pair at all.
        X = np.zeros((2, 3))
        r, p = pairwise_group_correlation(X, [0], [0])
        assert np.isnan(r) and np.isnan(p)
