"""Vendor classification of unlabeled devices (§7.1)."""

import pytest

from repro.analysis.features import EndpointFeatures, all_feature_names
from repro.analysis.vendor_classifier import (
    VendorClassifier,
    classify_unlabeled,
)


def _endpoint(ip, vendor, censor, window, fuzz, country="AA"):
    values = {name: float("nan") for name in all_feature_names()}
    values["CensorResponse"] = censor
    values["InjectedTCPWindow"] = window
    values["Get Word Alt."] = fuzz
    values["Normal"] = 1.0
    return EndpointFeatures(
        endpoint_ip=ip, country=country, values=values, label=vendor
    )


def _population():
    labeled = []
    for i in range(6):
        labeled.append(_endpoint(f"10.1.0.{i}", "VendorA", 1.0, 8192, 0.6))
        labeled.append(_endpoint(f"10.2.0.{i}", "VendorB", 0.0, 0, 0.1))
    unlabeled = [
        _endpoint("10.9.0.1", None, 1.0, 8192, 0.6),  # looks like A
        _endpoint("10.9.0.2", None, 0.0, 0, 0.1),  # looks like B
    ]
    return labeled, unlabeled


class TestClassifier:
    def test_predicts_matching_vendor(self):
        labeled, unlabeled = _population()
        classifier = VendorClassifier(n_estimators=15, seed=0).fit(labeled)
        predictions = classifier.predict(unlabeled)
        assert predictions[0].vendor == "VendorA"
        assert predictions[1].vendor == "VendorB"

    def test_confidence_high_for_clean_separation(self):
        labeled, unlabeled = _population()
        classifier = VendorClassifier(n_estimators=15, seed=0).fit(labeled)
        for prediction in classifier.predict(unlabeled):
            assert prediction.confidence >= 0.8

    def test_requires_training_labels(self):
        with pytest.raises(ValueError):
            VendorClassifier().fit([])

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            VendorClassifier().predict([_endpoint("1.1.1.1", None, 0, 0, 0)])

    def test_deterministic(self):
        labeled, unlabeled = _population()
        a = VendorClassifier(n_estimators=10, seed=4).fit(labeled).predict(unlabeled)
        b = VendorClassifier(n_estimators=10, seed=4).fit(labeled).predict(unlabeled)
        assert [p.vendor for p in a] == [p.vendor for p in b]
        assert [p.confidence for p in a] == [p.confidence for p in b]


class TestReport:
    def test_classify_unlabeled_report(self):
        labeled, unlabeled = _population()
        report = classify_unlabeled(labeled + unlabeled, seed=0)
        assert report.training_size == 12
        assert len(report.predictions) == 2
        assert report.by_vendor() == {"VendorA": 1, "VendorB": 1}

    def test_confidence_threshold(self):
        labeled, unlabeled = _population()
        report = classify_unlabeled(labeled + unlabeled, seed=0)
        assert len(report.confident(0.99)) <= len(report.predictions)
        assert report.confident(0.0) == report.predictions


class TestOnRealCampaign:
    def test_labels_recovered_for_held_out_devices(self, small_campaigns):
        """Hold out one device per vendor; the classifier should
        re-identify it from its censorship features alone."""
        features = []
        for campaign in small_campaigns.values():
            features.extend(campaign.endpoint_features())
        labeled = [f for f in features if f.label]
        by_vendor = {}
        for feature in labeled:
            by_vendor.setdefault(feature.label, []).append(feature)
        held_out = []
        training = []
        for vendor, members in by_vendor.items():
            if len(members) >= 2:
                held_out.append(members[0])
                training.extend(members[1:])
            else:
                training.extend(members)
        if len(held_out) < 2:
            pytest.skip("not enough multi-device vendors at this scale")
        classifier = VendorClassifier(n_estimators=30, seed=1).fit(training)
        predictions = classifier.predict(held_out)
        correct = sum(
            1
            for features, prediction in zip(held_out, predictions)
            if features.label == prediction.vendor
        )
        assert correct / len(held_out) >= 0.7
