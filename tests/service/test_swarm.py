"""The synthetic client swarm: coalescing under duplicate-heavy load,
flow-control enforcement, and delivered-byte identity across request
interleavings."""

import asyncio
import json

import pytest

from repro.service import ServiceConfig, SwarmConfig, run_swarm

TIMEOUT = 300


def swarm(**overrides):
    base = dict(
        country="AZ",
        seed=7,
        scale=0.35,
        requests=200,
        tenants=8,
        repetitions=2,
        max_endpoints=4,
    )
    base.update(overrides)
    return SwarmConfig(**base)


def run(config, service_config=None):
    if service_config is None:
        service_config = ServiceConfig(max_pending=8, rate=1.0, burst=2)
    return asyncio.run(
        asyncio.wait_for(run_swarm(config, service_config), TIMEOUT)
    )


class TestSwarm:
    def test_coalesces_throttles_and_verifies(self):
        report = run(swarm(interleave_seed=1, verify=True))
        stats = report.stats
        # Duplicate-heavy workload: most requested units coalesce.
        assert stats["coalescing_hit_rate"] >= 0.5
        # Flow control actually engaged.
        assert stats["rate_limited_waits"] > 0
        assert stats["backpressure_waits"] > 0
        assert stats["max_queue_depth"] <= 8
        # Every submitted unit was delivered, none failed.
        assert report.delivered == stats["units_requested"]
        assert stats["unit_failures"] == 0
        # Byte-identity vs a direct serial run of every distinct unit.
        assert report.verified is True

    def test_payloads_identical_across_interleavings(self):
        by_seed = {}
        for seed in (1, 2):
            report = run(swarm(interleave_seed=seed))
            blobs = {}
            for payload in report.payloads:
                key = (
                    payload["endpoint_ip"],
                    payload["test_domain"],
                    payload["protocol"],
                )
                blob = json.dumps(payload, sort_keys=True)
                # Every delivery of one unit carries the same bytes.
                assert blobs.setdefault(key, blob) == blob
            by_seed[seed] = blobs
        # Different seeds sample different unit subsets; every unit
        # BOTH runs measured must carry interleaving-independent bytes.
        shared = set(by_seed[1]) & set(by_seed[2])
        assert shared
        for key in shared:
            assert by_seed[1][key] == by_seed[2][key]

    def test_service_report_surfaces_ops_counters(self):
        report = run(swarm(interleave_seed=1))
        run_report = report.run_report
        assert run_report.counters["service.units_executed"] == (
            report.distinct_units
        )
        assert run_report.wall["queue_depth_max"] <= 8
        assert run_report.wall["coalescing_hit_rate"] >= 0.5
        # Per-unit latency percentiles for the service stage.
        unit_seconds = run_report.wall["stages"]["service"]["unit_seconds"]
        assert set(unit_seconds) >= {"min", "max", "mean", "p50", "p99"}
        rendered = run_report.render()
        assert "service.coalesced" in rendered

    @pytest.mark.slow
    def test_ten_thousand_request_acceptance(self):
        """The PR's acceptance run: 10k duplicate-heavy requests from
        many tenants, coalescing >= 50%, rate limits and backpressure
        enforced, byte-identical delivery — at two interleaving seeds."""
        for seed in (1, 2):
            report = run(
                swarm(
                    requests=10_000,
                    tenants=32,
                    interleave_seed=seed,
                    verify=True,
                ),
                ServiceConfig(max_pending=16, rate=2.0, burst=4),
            )
            stats = report.stats
            assert stats["coalescing_hit_rate"] >= 0.5
            assert stats["rate_limited_waits"] > 0
            assert stats["backpressure_waits"] > 0
            assert stats["max_queue_depth"] <= 16
            assert stats["unit_failures"] == 0
            assert report.verified is True
