"""The campaign service job queue: coalescing, flow control, failure
delivery, and the determinism-under-interleaving contract (golden
digests through the service)."""

import asyncio
import dataclasses
import heapq
import json

import pytest

from repro.experiments.campaign import CampaignConfig, trace_units_for
from repro.experiments.executor import CRASH_UNIT_ENV
from repro.netsim.faults import FaultPlan
from repro.persist import save_campaign
from repro.service import (
    CampaignService,
    ProbeRequest,
    ServiceConfig,
    ServiceError,
    WorldKey,
    run_campaign_via_service,
)

from ..experiments.test_golden_digest import GOLDEN
from ..helpers_golden import digest_dir

WORLD = WorldKey("AZ", seed=7, scale=0.35)
CONFIG = CampaignConfig(repetitions=2, max_endpoints=4)

# Every async test is bounded: the failure mode these tests guard
# against is a hang (lost delivery, dead dispatcher), which must fail
# loudly instead of stalling the suite.
TIMEOUT = 120


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, TIMEOUT))


def pool_for(service):
    return trace_units_for(service.world_for(WORLD), CONFIG)


def request(units, tenant="t0", priority=1):
    return ProbeRequest(
        tenant=tenant, world=WORLD, units=tuple(units),
        repetitions=CONFIG.repetitions, priority=priority,
    )


class TestQueueMechanics:
    def test_submit_requires_running_service(self):
        async def main():
            service = CampaignService()
            with pytest.raises(ServiceError, match="not running"):
                await service.submit(request([]))

        run(main())

    def test_coalescing_computes_once_and_fans_out(self):
        async def main():
            async with CampaignService() as service:
                unit = pool_for(service)[0]
                s1, s2 = await asyncio.gather(
                    service.submit(request([unit, unit], tenant="a")),
                    service.submit(request([unit, unit], tenant="b")),
                )
                results = await s1.collect() + await s2.collect()
                return service.stats(), results

        stats, results = run(main())
        assert stats["units_executed"] == 1
        assert stats["units_requested"] == 4
        assert stats["coalesced"] == 3
        assert stats["coalescing_hit_rate"] == 0.75
        # One subscriber triggered the execution; the rest coalesced.
        assert sum(1 for r in results if not r.coalesced) == 1
        # All four deliveries carry the same bytes.
        blobs = {json.dumps(r.payload, sort_keys=True) for r in results}
        assert len(blobs) == 1
        assert all(r.ok for r in results)

    def test_done_cache_answers_later_requests(self):
        async def main():
            async with CampaignService() as service:
                unit = pool_for(service)[0]
                first = await service.submit(request([unit]))
                await first.collect()
                later = await service.submit(request([unit], tenant="late"))
                results = await later.collect()
                return service.stats(), results

        stats, results = run(main())
        assert stats["units_executed"] == 1
        assert results[0].coalesced
        assert results[0].ok

    def test_heap_orders_by_priority_then_admission(self):
        async def main():
            service = CampaignService(ServiceConfig(max_pending=100))
            # Admit without dispatching: the heap order is the contract.
            service._running = True
            units = pool_for(service)[:6]
            for index, unit in enumerate(units):
                await service.submit(
                    request([unit], priority=(2, 0, 1)[index % 3])
                )
            popped = [heapq.heappop(service._heap) for _ in range(6)]
            return [(priority, seq) for priority, seq, _ in popped]

        order = run(main())
        assert order == sorted(order)
        assert [p for p, _ in order] == [0, 0, 1, 1, 2, 2]

    def test_rate_limiting_throttles_a_tenant(self):
        async def main():
            config = ServiceConfig(rate=0.5, burst=1)
            async with CampaignService(config) as service:
                units = pool_for(service)[:5]
                stream = await service.submit(request(units))
                results = await stream.collect()
                return service.stats(), results

        stats, results = run(main())
        assert stats["rate_limited_waits"] > 0
        assert len(results) == 5
        assert all(r.ok for r in results)

    def test_backpressure_bounds_queue_depth(self):
        async def main():
            config = ServiceConfig(max_pending=2)
            async with CampaignService(config) as service:
                units = pool_for(service)[:12]
                streams = await asyncio.gather(
                    *(
                        service.submit(request([unit], tenant=f"t{i % 3}"))
                        for i, unit in enumerate(units)
                    )
                )
                for stream in streams:
                    assert all(r.ok for r in await stream.collect())
                return service.stats()

        stats = run(main())
        assert stats["max_queue_depth"] <= 2
        assert stats["backpressure_waits"] > 0
        assert stats["units_executed"] == 12

    def test_admission_race_executes_each_unit_once(self):
        """Regression: a submitter that awaited backpressure capacity
        must re-check the coalescing table — without it the same key is
        enqueued twice and the first state's subscribers never hear
        back (the collect() below would hang)."""

        async def main():
            config = ServiceConfig(max_pending=1)
            async with CampaignService(config) as service:
                units = pool_for(service)[:5]
                # Two tenants submitting overlapping batches, forced to
                # interleave at the backpressure gate.
                s1, s2 = await asyncio.gather(
                    service.submit(request(units, tenant="a")),
                    service.submit(request(units, tenant="b")),
                )
                r1, r2 = await s1.collect(), await s2.collect()
                return service.stats(), r1, r2

        stats, r1, r2 = run(main())
        assert stats["units_executed"] == 5
        assert len(r1) == len(r2) == 5
        assert all(r.ok for r in r1 + r2)


class TestFailureHandling:
    def test_dead_worker_is_retried_then_reported(self, monkeypatch):
        """A worker that hard-exits mid-unit must surface as a failed
        UnitResult after the retry budget — delivered, not hung — and
        the service must keep executing other units afterwards."""
        async def main():
            config = ServiceConfig(workers=1, max_retries=1)
            async with CampaignService(config) as service:
                units = pool_for(service)[:3]
                poisoned = units[0]
                monkeypatch.setenv(
                    CRASH_UNIT_ENV,
                    "|".join(str(part) for part in poisoned.key),
                )
                stream = await service.submit(request(units))
                results = {r.unit: r for r in await stream.collect()}
                return service.stats(), results, poisoned

        stats, results, poisoned = run(main())
        failed = results.pop(poisoned)
        assert not failed.ok
        assert "worker process died" in failed.error
        assert failed.attempts == 2
        assert stats["unit_retries"] == 1
        assert stats["unit_failures"] == 1
        # The survivors ran on a rebuilt executor.
        assert all(r.ok for r in results.values())
        assert stats["units_executed"] == 2


class TestDeterminism:
    """The tentpole invariant: request interleaving must not change a
    single delivered byte. Campaigns reassembled from shuffled,
    duplicate-heavy, multi-tenant submissions must hit the same golden
    digests as a direct serial run_campaign."""

    def _digest_via_service(self, tmp_path, tag, config, interleave_seed):
        async def main():
            service_config = ServiceConfig(max_pending=8, rate=2.0, burst=4)
            async with CampaignService(service_config) as service:
                return await run_campaign_via_service(
                    service,
                    "AZ",
                    config,
                    seed=7,
                    scale=0.35,
                    tenants=4,
                    interleave_seed=interleave_seed,
                )

        campaign = asyncio.run(asyncio.wait_for(main(), TIMEOUT))
        out = tmp_path / f"{tag}-{interleave_seed}"
        save_campaign(campaign, str(out))
        return digest_dir(out)

    @pytest.mark.parametrize("interleave_seed", [1, 2])
    def test_matches_golden_across_interleavings(
        self, tmp_path, interleave_seed
    ):
        config = CampaignConfig(
            repetitions=2, max_endpoints=4, fuzz_max_endpoints=2
        )
        digest = self._digest_via_service(
            tmp_path, "az", config, interleave_seed
        )
        assert digest == GOLDEN["az-serial"]

    def test_matches_golden_under_fault_plan(self, tmp_path):
        config = CampaignConfig(
            repetitions=2,
            max_endpoints=4,
            fuzz_max_endpoints=2,
            fault_plan=FaultPlan.from_spec("lossy"),
        )
        digest = self._digest_via_service(tmp_path, "az-lossy", config, 3)
        assert digest == GOLDEN["az-lossy-serial"]


class TestRestartPersistence:
    """ServiceConfig.cache_dir: completed units survive a service
    restart and are answered from disk, byte-identically."""

    def _run_service(self, cache_dir, telemetry=None):
        async def main():
            config = ServiceConfig(cache_dir=str(cache_dir))
            async with CampaignService(config, telemetry=telemetry) as service:
                units = pool_for(service)[:6]
                stream = await service.submit(request(units))
                return await stream.collect(), service.stats()

        return run(main())

    def test_second_service_restores_from_disk(self, tmp_path):
        from repro.telemetry import Telemetry

        cache_dir = tmp_path / "cache"
        first_results, first_stats = self._run_service(cache_dir)
        assert first_stats["units_executed"] == 6

        telemetry = Telemetry()
        second_results, second_stats = self._run_service(
            cache_dir, telemetry=telemetry
        )
        assert second_stats["units_executed"] == 0
        assert telemetry.counters["service.cache_restored"] == 6
        assert [json.dumps(r.payload, sort_keys=True)
                for r in second_results] == [
            json.dumps(r.payload, sort_keys=True) for r in first_results
        ]

    def test_no_cache_dir_keeps_memory_only_behavior(self, tmp_path):
        async def main():
            async with CampaignService() as service:
                units = pool_for(service)[:2]
                stream = await service.submit(request(units))
                return await stream.collect(), service.stats()

        _, stats1 = run(main())
        _, stats2 = run(main())
        assert stats1["units_executed"] == 2
        assert stats2["units_executed"] == 2  # nothing persisted

    def test_shares_cache_format_with_epoch_scheduler(self, tmp_path):
        """Both writers speak the same UnitCache file format: the
        service can load (and extend) a scheduler-written cache."""
        from repro.persist import UnitCache

        cache_dir = tmp_path / "cache"
        UnitCache(cache_dir).put("someone-elses-key", "trace", {"x": 1})
        _, stats = self._run_service(cache_dir)
        assert stats["units_executed"] == 6  # foreign keys don't collide
        assert len(UnitCache(cache_dir)) == 7
