"""The determinism lint: wall-clock reads are caught, the tree is clean."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import lint_determinism  # noqa: E402


def _violations(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(source)
    return lint_determinism.lint_file(path, Path("src/repro/mod.py"))


class TestDetection:
    def test_time_time_flagged(self, tmp_path):
        found = _violations(tmp_path, "import time\nx = time.time()\n")
        assert len(found) == 1
        assert found[0][2] == "time.time()"

    def test_perf_counter_flagged(self, tmp_path):
        found = _violations(
            tmp_path, "import time\nstart = time.perf_counter()\n"
        )
        assert found and found[0][2] == "time.perf_counter()"

    def test_from_import_flagged(self, tmp_path):
        found = _violations(
            tmp_path, "from time import perf_counter\nt = perf_counter()\n"
        )
        assert found and found[0][2] == "perf_counter()"

    def test_datetime_now_flagged(self, tmp_path):
        found = _violations(
            tmp_path, "import datetime\nd = datetime.datetime.now()\n"
        )
        assert found

    def test_sanctioned_wrapper_clean(self, tmp_path):
        found = _violations(
            tmp_path,
            "from repro.telemetry import wall_now\nt = wall_now()\n",
        )
        assert found == []

    def test_strings_and_comments_clean(self, tmp_path):
        found = _violations(
            tmp_path, "# time.time() in a comment\nx = 'time.perf_counter()'\n"
        )
        assert found == []

    def test_time_sleep_allowed(self, tmp_path):
        # Only *reads* of the clock are forbidden.
        found = _violations(tmp_path, "import time\ntime.sleep(0)\n")
        assert found == []


class TestTree:
    def test_src_tree_is_clean(self):
        assert lint_determinism.main([str(REPO_ROOT)]) == 0
