"""Phase 1 of the two-phase analyzer: the ProjectIndex (symbol
resolution across relative imports and re-exports, dataclass field
inventories with inheritance and slots, telemetry call-site
collection, build determinism) — plus the walker's unparseable-file
diagnostics and the --baseline diff contract the CI job relies on.
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.lintkit.__main__ import main as lintkit_main  # noqa: E402
from tools.lintkit.index import ProjectIndex, resolve_relative  # noqa: E402
from tools.lintkit.walker import walk_paths  # noqa: E402

from tests.test_lintkit import write_module  # noqa: E402


def build_index(root: Path) -> ProjectIndex:
    contexts, errors = walk_paths([root], root=root)
    assert errors == []
    return ProjectIndex.build(contexts)


# ---------------------------------------------------------------------------
# symbol resolution


class TestSymbolResolution:
    def test_local_symbol(self, tmp_path):
        write_module(tmp_path, "repro.persist", "class PersistError(Exception):\n    pass\n")
        index = build_index(tmp_path)
        assert (
            index.resolve_symbol("repro.persist", "PersistError")
            == "repro.persist.PersistError"
        )

    def test_relative_import_resolved(self, tmp_path):
        # `from ..persist import PersistError` inside repro.store.facts
        # resolves against the importer's own dotted name.
        write_module(tmp_path, "repro.persist", "class PersistError(Exception):\n    pass\n")
        write_module(
            tmp_path,
            "repro.store.facts",
            "from ..persist import PersistError\n",
        )
        index = build_index(tmp_path)
        assert (
            index.resolve_symbol("repro.store.facts", "PersistError")
            == "repro.persist.PersistError"
        )

    def test_aliased_import_resolved(self, tmp_path):
        write_module(tmp_path, "repro.persist", "class PersistError(Exception):\n    pass\n")
        write_module(
            tmp_path,
            "repro.mod",
            "from repro.persist import PersistError as PErr\n",
        )
        index = build_index(tmp_path)
        assert (
            index.resolve_symbol("repro.mod", "PErr")
            == "repro.persist.PersistError"
        )

    def test_reexport_hop_followed(self, tmp_path):
        # persist defines it, the package __init__ re-exports it, and a
        # consumer imports it from the package — three modules, one
        # canonical name.
        write_module(tmp_path, "repro.persist", "class PersistError(Exception):\n    pass\n")
        (tmp_path / "repro" / "__init__.py").write_text(
            "from .persist import PersistError\n"
        )
        write_module(
            tmp_path, "repro.mod", "from repro import PersistError\n"
        )
        index = build_index(tmp_path)
        assert (
            index.resolve_symbol("repro.mod", "PersistError")
            == "repro.persist.PersistError"
        )

    def test_unknown_symbol_is_none(self, tmp_path):
        write_module(tmp_path, "repro.mod", "X = 1\n")
        index = build_index(tmp_path)
        assert index.resolve_symbol("repro.mod", "Nope") is None

    def test_resolve_relative(self):
        assert (
            resolve_relative("repro.store.facts", False, 2, "persist")
            == "repro.persist"
        )
        assert resolve_relative("repro.store", True, 1, "facts") == (
            "repro.store.facts"
        )
        assert resolve_relative("repro.mod", False, 0, "os.path") == "os.path"
        # Relative level reaching above the package root is unresolvable.
        assert resolve_relative("repro", False, 3, "x") is None


# ---------------------------------------------------------------------------
# dataclass field inventories


class TestDataclassFields:
    def test_inherited_fields_across_modules(self, tmp_path):
        write_module(
            tmp_path,
            "repro.base",
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Base:\n"
            "    a: int\n"
            "    b: str = 'x'\n",
        )
        write_module(
            tmp_path,
            "repro.child",
            "from dataclasses import dataclass\n"
            "from repro.base import Base\n"
            "@dataclass\n"
            "class Child(Base):\n"
            "    c: float = 0.0\n",
        )
        index = build_index(tmp_path)
        assert index.dataclass_fields("repro.child", "Child") == (
            "a",
            "b",
            "c",
        )

    def test_slots_dataclass_inventoried(self, tmp_path):
        write_module(
            tmp_path,
            "repro.mod",
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class Point:\n"
            "    x: int\n"
            "    y: int\n",
        )
        index = build_index(tmp_path)
        assert index.dataclass_fields("repro.mod", "Point") == ("x", "y")

    def test_classvar_and_initvar_excluded(self, tmp_path):
        write_module(
            tmp_path,
            "repro.mod",
            "from dataclasses import dataclass, InitVar\n"
            "from typing import ClassVar\n"
            "@dataclass\n"
            "class C:\n"
            "    a: int\n"
            "    table: ClassVar[dict] = {}\n"
            "    seed: InitVar[int] = 0\n",
        )
        index = build_index(tmp_path)
        assert index.dataclass_fields("repro.mod", "C") == ("a",)

    def test_reannotated_field_keeps_base_position(self, tmp_path):
        # dataclasses.fields ordering: a re-annotated inherited field
        # stays where the base declared it.
        write_module(
            tmp_path,
            "repro.mod",
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class Base:\n"
            "    a: int = 0\n"
            "    b: int = 0\n"
            "@dataclass\n"
            "class Child(Base):\n"
            "    a: float = 0.0\n"
            "    c: int = 0\n",
        )
        index = build_index(tmp_path)
        assert index.dataclass_fields("repro.mod", "Child") == (
            "a",
            "b",
            "c",
        )

    def test_non_dataclass_is_none(self, tmp_path):
        write_module(tmp_path, "repro.mod", "class Plain:\n    a: int\n")
        index = build_index(tmp_path)
        assert index.dataclass_fields("repro.mod", "Plain") is None


# ---------------------------------------------------------------------------
# telemetry call-site collection


class TestTelemetryCollection:
    def test_literal_and_computed_names(self, tmp_path):
        write_module(
            tmp_path,
            "repro.mod",
            "def run(tel, n):\n"
            "    tel.count('sim.packets', n)\n"
            "    tel.count(f'faults.{n}')\n"
            "    tel.event(kind='stage', label='x')\n"
            "    tel.span('campaign')\n",
        )
        index = build_index(tmp_path)
        by_api = {(c.api, c.names) for c in index.telemetry_calls}
        assert ("count", ("sim.packets",)) in by_api
        assert ("count", ()) in by_api  # computed name -> no literals
        assert ("event", ("stage",)) in by_api  # kind= keyword
        assert ("span", ("campaign",)) in by_api

    def test_conditional_literal_yields_both_branches(self, tmp_path):
        write_module(
            tmp_path,
            "repro.mod",
            "def run(self, fast):\n"
            "    self.telemetry.count('a.fast' if fast else 'a.slow')\n",
        )
        index = build_index(tmp_path)
        (call,) = index.telemetry_calls
        assert call.names == ("a.fast", "a.slow")
        assert call.function == "run"

    def test_non_telemetry_receiver_ignored(self, tmp_path):
        write_module(
            tmp_path,
            "repro.mod",
            "def run(counter):\n    counter.count('x')\n",
        )
        index = build_index(tmp_path)
        assert index.telemetry_calls == []


# ---------------------------------------------------------------------------
# determinism


class TestIndexStability:
    def test_two_builds_identical(self, tmp_path):
        write_module(
            tmp_path,
            "repro.b",
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class B:\n"
            "    x: int\n"
            "def emit(tel):\n    tel.count('b.x')\n",
        )
        write_module(tmp_path, "repro.a", "from repro.b import B\nK = {'k': 1}\n")
        contexts, _ = walk_paths([tmp_path], root=tmp_path)
        first = ProjectIndex.build(contexts).to_dict()
        second = ProjectIndex.build(list(reversed(contexts))).to_dict()
        assert first == second
        # And the snapshot JSON-serializes deterministically.
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )


# ---------------------------------------------------------------------------
# unparseable files (satellite: the walker never tracebacks)


class TestWalkerRobustness:
    def test_syntax_error_file_diagnosed(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def broken(:\n    pass\n")
        assert lintkit_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RP000" in out and "syntax error" in out
        assert "bad.py:1" in out

    def test_non_utf8_file_diagnosed(self, tmp_path, capsys):
        (tmp_path / "latin.py").write_bytes(b"# caf\xe9\nX = 1\n")
        assert lintkit_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RP000" in out and "UTF-8" in out

    def test_nul_bytes_diagnosed(self, tmp_path, capsys):
        (tmp_path / "nul.py").write_bytes(b"X = 1\x00\n")
        assert lintkit_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        # ast.parse reports NUL bytes as SyntaxError on 3.11+ and as a
        # bare ValueError on older interpreters; both route to RP000.
        assert "RP000" in out
        assert "null bytes" in out or "cannot parse" in out

    def test_good_files_still_linted_alongside_bad(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        write_module(
            tmp_path, "repro.mod", "import time\nx = time.time()\n"
        )
        assert lintkit_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RP000" in out and "RP101" in out


# ---------------------------------------------------------------------------
# --baseline diff (the CI ratchet)


class TestBaselineDiff:
    def _baseline_for(self, tmp_path, capsys, source):
        write_module(tmp_path, "repro.mod", source)
        lintkit_main([str(tmp_path), "--json"])
        payload = capsys.readouterr().out
        baseline = tmp_path / "baseline.json"
        baseline.write_text(payload)
        return baseline

    def test_no_delta_exits_zero(self, tmp_path, capsys):
        baseline = self._baseline_for(
            tmp_path, capsys, "import time\nx = time.time()\n"
        )
        assert lintkit_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "no delta" in capsys.readouterr().out

    def test_new_finding_exits_one(self, tmp_path, capsys):
        baseline = self._baseline_for(tmp_path, capsys, "X = 1\n")
        write_module(
            tmp_path, "repro.mod", "import time\nx = time.time()\n"
        )
        assert lintkit_main([str(tmp_path), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "NEW" in out and "RP101" in out

    def test_fixed_finding_exits_zero_with_reminder(self, tmp_path, capsys):
        baseline = self._baseline_for(
            tmp_path, capsys, "import time\nx = time.time()\n"
        )
        write_module(tmp_path, "repro.mod", "X = 1\n")
        assert lintkit_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "FIXED" in out

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        write_module(tmp_path, "repro.mod", "X = 1\n")
        missing = tmp_path / "nope.json"
        assert lintkit_main([str(tmp_path), "--baseline", str(missing)]) == 2

    def test_committed_baseline_matches_tree(self):
        # The ratchet CI runs: src vs tools/lintkit/baseline.json.
        baseline = REPO_ROOT / "tools" / "lintkit" / "baseline.json"
        assert baseline.exists(), "commit tools/lintkit/baseline.json"
        assert (
            lintkit_main(
                [str(REPO_ROOT / "src"), "--baseline", str(baseline)]
            )
            == 0
        )
