"""Telemetry primitives: counters, spans, events, reports."""

import json

import pytest

from repro.telemetry import (
    DEFAULT_MAX_EVENTS,
    NULL_TELEMETRY,
    NullTelemetry,
    RunReport,
    Telemetry,
)


class _FakeSim:
    def __init__(self):
        self.clock = 0.0


class TestNullTelemetry:
    def test_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert NullTelemetry.enabled is False

    def test_all_operations_are_noops(self):
        tel = NullTelemetry()
        tel.count("x")
        tel.add_virtual("x", 1.0)
        tel.add_wall("x", 1.0)
        tel.event("x", a=1)
        tel.record_unit_wall("stage", 0.1, 123)
        tel.merge_snapshot({"counters": {}, "spans": {}, "events": []})

    def test_span_is_reusable_context_manager(self):
        tel = NullTelemetry()
        span = tel.span("x")
        with span:
            pass
        # Same instance every time — no per-call allocation.
        assert tel.span("y") is span


class TestCounters:
    def test_count_accumulates(self):
        tel = Telemetry()
        tel.count("probes")
        tel.count("probes", 4)
        assert tel.counters == {"probes": 5}

    def test_enabled(self):
        assert Telemetry().enabled is True


class TestSpans:
    def test_virtual_span_measures_sim_clock(self):
        tel = Telemetry()
        sim = _FakeSim()
        with tel.span("sweep", sim=sim):
            sim.clock += 2.5
        with tel.span("sweep", sim=sim):
            sim.clock += 1.5
        report = tel.build_report()
        assert report.spans["sweep"]["count"] == 2
        assert report.spans["sweep"]["virtual_seconds"] == pytest.approx(4.0)

    def test_span_without_sim_has_zero_virtual(self):
        tel = Telemetry()
        with tel.span("probe"):
            pass
        report = tel.build_report()
        assert report.spans["probe"]["virtual_seconds"] == 0.0
        assert report.wall["spans"]["probe"] >= 0.0


class TestEvents:
    def test_event_records_kind_and_fields(self):
        tel = Telemetry()
        tel.event("blocked", endpoint="1.2.3.4", ttl=5)
        assert tel.events == [{"kind": "blocked", "endpoint": "1.2.3.4", "ttl": 5}]

    def test_event_cap_is_enforced_and_counted(self):
        tel = Telemetry(max_events=3)
        for i in range(5):
            tel.event("e", i=i)
        assert len(tel.events) == 3
        assert tel.events_dropped == 2
        assert [e["i"] for e in tel.events] == [0, 1, 2]

    def test_default_cap(self):
        assert Telemetry().max_events == DEFAULT_MAX_EVENTS


class TestSnapshotMerge:
    def _unit_snapshot(self, i):
        unit = Telemetry()
        unit.count("probes", i)
        unit.add_virtual("sweep", float(i), count=1)
        unit.event("done", i=i)
        return unit.snapshot()

    def test_merge_accumulates_in_order(self):
        tel = Telemetry()
        for i in (1, 2, 3):
            tel.merge_snapshot(self._unit_snapshot(i))
        assert tel.counters == {"probes": 6}
        report = tel.build_report()
        assert report.spans["sweep"] == {"count": 3, "virtual_seconds": 6.0}
        assert [e["i"] for e in report.events] == [1, 2, 3]

    def test_merge_respects_event_cap(self):
        tel = Telemetry(max_events=2)
        for i in range(4):
            tel.merge_snapshot(self._unit_snapshot(i))
        assert len(tel.events) == 2
        assert tel.events_dropped == 2

    def test_merge_carries_nested_drops(self):
        unit = Telemetry(max_events=1)
        unit.event("a")
        unit.event("b")
        tel = Telemetry()
        tel.merge_snapshot(unit.snapshot())
        assert tel.events_dropped == 1

    def test_snapshot_is_json_safe(self):
        json.dumps(self._unit_snapshot(1))


class TestRunReport:
    def _report(self):
        tel = Telemetry()
        tel.count("b", 2)
        tel.count("a", 1)
        sim = _FakeSim()
        with tel.span("sweep", sim=sim):
            sim.clock += 1.0
        tel.event("done", i=0)
        tel.record_unit_wall("traces", 0.25, 100)
        tel.record_unit_wall("traces", 0.75, 101)
        return tel.build_report(
            meta={"country": "KZ"}, wall_extra={"workers_requested": 4}
        )

    def test_identity_excludes_wall(self):
        report = self._report()
        identity = report.identity_dict()
        assert "wall" not in identity
        assert set(identity) == {
            "counters", "spans", "events", "events_dropped", "meta",
        }

    def test_identity_json_is_canonical(self):
        report = self._report()
        # Same content, different wall data -> same identity bytes.
        other = RunReport(
            counters=dict(report.counters),
            spans={k: dict(v) for k, v in report.spans.items()},
            events=list(report.events),
            events_dropped=report.events_dropped,
            wall={"totally": "different"},
            meta=dict(report.meta),
        )
        assert report.identity_json() == other.identity_json()

    def test_counters_sorted_in_report(self):
        report = self._report()
        assert list(report.counters) == ["a", "b"]

    def test_wall_stage_aggregates(self):
        stages = self._report().wall["stages"]
        assert stages["traces"]["units"] == 2
        assert stages["traces"]["unit_seconds"]["mean"] == pytest.approx(0.5)
        assert stages["traces"]["units_by_worker"] == {"100": 1, "101": 1}
        assert self._report().wall["workers_requested"] == 4

    def test_wall_stage_percentiles(self):
        # Nearest-rank p50/p99 over the per-unit wall latencies; with
        # two samples p50 is the lower one and p99 the upper one.
        unit_seconds = self._report().wall["stages"]["traces"]["unit_seconds"]
        assert unit_seconds["p50"] == pytest.approx(0.25)
        assert unit_seconds["p99"] == pytest.approx(0.75)
        tel = Telemetry()
        for i in range(100):
            tel.record_unit_wall("svc", i / 100.0, 0)
        report = tel.build_report(meta={})
        stats = report.wall["stages"]["svc"]["unit_seconds"]
        assert stats["p50"] == pytest.approx(0.49)
        assert stats["p99"] == pytest.approx(0.98)
        assert stats["min"] <= stats["p50"] <= stats["p99"] <= stats["max"]
        # The rendered report surfaces the tail latency.
        assert "p99" in report.render()

    def test_round_trips_through_dict(self):
        report = self._report()
        restored = RunReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert restored.identity_json() == report.identity_json()
        assert restored.wall == report.wall

    def test_render_mentions_sections(self):
        text = self._report().render()
        assert "Run report — KZ campaign" in text
        assert "Counters" in text
        assert "Spans (virtual clock)" in text
        assert "excluded from identity" in text
        assert "[done]" in text

    def test_render_empty_report(self):
        assert RunReport().render().startswith("Run report")


class TestTransitExpiryCounters:
    """Telemetry parity for silent TTL expiry: reverse and injected
    transits count their deaths just like forward expiry does."""

    def _world(self):
        from .helpers import build_linear_world

        return build_linear_world(n_routers=4, seed=5)

    def test_reverse_expiry_counter(self):
        from repro.netmodel import tcp as tcpmod
        from repro.netmodel.packet import tcp_packet
        from repro.netsim.simulator import POLICY_REVERSE, Transit

        world = self._world()
        sim = world.sim
        tel = Telemetry()
        sim.set_telemetry(tel)
        route = sim.topology.route_between(world.client.ip, world.endpoint.ip)
        packet = tcp_packet(
            world.endpoint.ip,
            world.client.ip,
            80,
            40000,
            flags=tcpmod.SYN | tcpmod.ACK,
            ttl=1,
        )
        deliveries = []
        sim._run_transit(
            Transit(packet, route.paths[0], 4, POLICY_REVERSE, world.client.ip),
            deliveries,
        )
        assert deliveries == []
        assert tel.counters["sim.reverse_ttl_expired"] == 1

    def test_injected_expiry_counter(self):
        from repro.netmodel import tcp as tcpmod
        from repro.netmodel.packet import tcp_packet
        from repro.netsim.simulator import POLICY_INJECTED_TO_SERVER, Transit

        world = self._world()
        sim = world.sim
        tel = Telemetry()
        sim.set_telemetry(tel)
        route = sim.topology.route_between(world.client.ip, world.endpoint.ip)
        forged = tcp_packet(
            world.client.ip,
            world.endpoint.ip,
            47001,
            80,
            flags=tcpmod.PSH | tcpmod.ACK,
            ttl=1,
            payload=b"forged",
        )
        forged.injected = True
        deliveries = []
        sim._run_transit(
            Transit(
                forged,
                route.paths[0],
                0,
                POLICY_INJECTED_TO_SERVER,
                world.client.ip,
            ),
            deliveries,
        )
        assert deliveries == []
        assert tel.counters["sim.injected_ttl_expired"] == 1

    def test_counters_absent_without_expiry(self):
        from repro.netmodel.packet import tcp_packet

        world = self._world()
        tel = Telemetry()
        world.sim.set_telemetry(tel)
        world.sim.send_from_client(
            tcp_packet(world.client.ip, world.endpoint.ip, 40000, 80, ttl=64)
        )
        assert "sim.reverse_ttl_expired" not in tel.counters
        assert "sim.injected_ttl_expired" not in tel.counters


class TestBatchCounters:
    """The batched packet plane's observability (PR 6 satellite):
    fast-path/fallback counters and the per-batch size event, all
    rendered by ``repro report`` like any other counter."""

    def _world(self):
        from .helpers import build_linear_world

        return build_linear_world(n_routers=4, seed=5)

    def _syn(self, world, sport):
        from repro.netmodel import tcp as tcpmod
        from repro.netmodel.packet import tcp_packet

        return tcp_packet(
            world.client.ip,
            world.endpoint.ip,
            sport,
            80,
            flags=tcpmod.SYN,
            net=world.sim.net_context,
        )

    def test_fast_path_counter(self):
        world = self._world()
        tel = Telemetry()
        world.sim.set_telemetry(tel)
        engine = world.sim.batch_engine()
        for i in range(3):
            engine.send(self._syn(world, 40000 + i))
        assert tel.counters["sim.batch_fast_path"] == 3
        assert "sim.batch_scalar_fallback" not in tel.counters

    def test_fallback_counter_under_fault_plan(self):
        from repro.netsim.faults import PRESETS

        world = self._world()
        tel = Telemetry()
        world.sim.set_telemetry(tel)
        world.sim.set_fault_plan(PRESETS["lossy"])
        engine = world.sim.batch_engine()
        for i in range(2):
            engine.send(self._syn(world, 41000 + i))
        assert tel.counters["sim.batch_scalar_fallback"] == 2
        assert "sim.batch_fast_path" not in tel.counters

    def test_batch_event_size_histogram(self):
        world = self._world()
        tel = Telemetry()
        world.sim.set_telemetry(tel)
        engine = world.sim.batch_engine()
        with engine.batch("test-sweep"):
            for i in range(4):
                engine.send(self._syn(world, 42000 + i))
        assert tel.counters["sim.batches"] == 1
        events = [e for e in tel.events if e["kind"] == "sim.batch"]
        assert events == [
            {
                "kind": "sim.batch",
                "label": "test-sweep",
                "size": 4,
                "fast": 4,
                "fallback": 0,
            }
        ]

    def test_batch_event_mixes_fast_and_fallback(self):
        from repro.netsim.faults import PRESETS

        world = self._world()
        tel = Telemetry()
        world.sim.set_telemetry(tel)
        engine = world.sim.batch_engine()
        with engine.batch("mixed"):
            engine.send(self._syn(world, 43000))
            world.sim.set_fault_plan(PRESETS["lossy"])
            engine.send(self._syn(world, 43001))
        event = [e for e in tel.events if e["kind"] == "sim.batch"][0]
        assert event["size"] == 2
        assert event["fast"] == 1
        assert event["fallback"] == 1

    def test_counters_surface_in_run_report(self):
        world = self._world()
        tel = Telemetry()
        world.sim.set_telemetry(tel)
        engine = world.sim.batch_engine()
        with engine.batch("sweep"):
            engine.send(self._syn(world, 44000))
        report = tel.build_report()
        assert report.counters["sim.batch_fast_path"] == 1
        assert report.counters["sim.batches"] == 1
        rendered = report.render()
        assert "sim.batch_fast_path" in rendered
        assert "sim.batches" in rendered

    def test_measurement_tools_frame_batches(self):
        # CenTrace sweeps and CenFuzz endpoint runs are the batch
        # boundaries campaigns observe.
        from repro.core.centrace import CenTrace, CenTraceConfig

        world = self._world()
        tel = Telemetry()
        world.sim.set_telemetry(tel)
        tracer = CenTrace(
            world.sim, world.client, config=CenTraceConfig(repetitions=1)
        )
        tracer.sweep(world.endpoint.ip, "www.ok.example", "http")
        events = [e for e in tel.events if e["kind"] == "sim.batch"]
        assert len(events) == 1
        assert events[0]["label"] == "centrace.sweep"
        assert events[0]["size"] == events[0]["fast"] + events[0]["fallback"]
        assert events[0]["size"] > 0
