"""Pathfinder-style inconsistency findings and the localizer on top."""

from repro.localize import (
    InconsistencyLocalizer,
    find_inconsistencies,
)
from tests.localize.test_tomography import (
    A,
    B,
    EP1,
    EP2,
    INGRESS,
    TAIL1,
    TAIL2,
    path_a,
    path_b,
    probe,
)


class TestFindInconsistencies:
    def test_disagreement_yields_finding_with_divergent_segment(self):
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_b(), False),
        ]
        (finding,) = find_inconsistencies(evidence)
        assert finding.endpoint_ip == EP1
        assert finding.blocked_count == 1 and finding.clean_count == 1
        # Divergent = blocked path minus clean path = branch A.
        assert set(finding.divergent_links) == set(A)
        assert "divergent" in finding.brief()

    def test_consistent_blocking_yields_nothing(self):
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_b(), True),
        ]
        assert find_inconsistencies(evidence) == []

    def test_same_path_flakiness_is_not_an_inconsistency(self):
        # Same link set, different outcome: a flaky device, not a
        # path-dependent disagreement.
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_a(), False),
        ]
        assert find_inconsistencies(evidence) == []

    def test_one_finding_per_distinct_blocked_path(self):
        mixed = (INGRESS,) + (A[0], ("a", "x"), ("x", "j")) + TAIL1
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, mixed, True),
            probe(EP1, path_b(), False),
        ]
        findings = find_inconsistencies(evidence)
        assert len(findings) == 2
        assert {f.blocked_links for f in findings} == {path_a(), mixed}

    def test_findings_are_per_target(self):
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_b(), False),
            probe(EP2, path_a(TAIL2), True),
            probe(EP2, path_b(TAIL2), False),
        ]
        findings = find_inconsistencies(evidence)
        assert {f.endpoint_ip for f in findings} == {EP1, EP2}


class TestInconsistencyLocalizer:
    def test_claims_union_of_divergent_segments(self):
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_b(), False),
        ]
        (verdict,) = InconsistencyLocalizer().localize(evidence)
        assert verdict.method == "inconsistency"
        assert set(verdict.candidate_links) == set(A)
        assert verdict.hop_low == 1 and verdict.hop_high == 2

    def test_silent_without_disagreement(self):
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_b(), True),
        ]
        assert InconsistencyLocalizer().localize(evidence) == []
