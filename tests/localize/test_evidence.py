"""PathEvidence producers: outcome classification, churn collection,
CenTrace wrapping."""

import pytest

from repro.experiments.localize_xval import (
    TOMO_DOMAIN,
    tomography_world,
)
from repro.localize import (
    PathEvidence,
    SOURCE_CENTRACE,
    SOURCE_OUTCOME,
    collect_outcome_evidence,
    evidence_from_trace,
)
from repro.localize.evidence import classify_outcome
from repro.core.blockpages import DEFAULT_MATCHER
from repro.core.centrace.results import (
    TYPE_FIN,
    TYPE_NORMAL,
    TYPE_RST,
    TYPE_TIMEOUT,
)
from repro.netmodel import tcp as tcpmod
from repro.netmodel.ip import IPHeader
from repro.netmodel.packet import Packet
from repro.netmodel.tcp import TCPSegment


def tcp_packet(flags=tcpmod.ACK, payload=b""):
    return Packet(
        ip=IPHeader(src="10.0.0.9", dst="10.0.0.1", ttl=60),
        tcp=TCPSegment(
            sport=80, dport=40000, seq=1, ack=1, flags=flags, payload=payload
        ),
    )


class TestClassifyOutcome:
    def test_no_responses_is_timeout(self):
        assert classify_outcome([], DEFAULT_MATCHER) == TYPE_TIMEOUT

    def test_rst_wins_when_first(self):
        packets = [
            tcp_packet(flags=tcpmod.RST | tcpmod.ACK),
            tcp_packet(payload=b"HTTP/1.1 200 OK\r\n\r\nhello"),
        ]
        assert classify_outcome(packets, DEFAULT_MATCHER) == TYPE_RST

    def test_real_content_wins_when_first(self):
        packets = [
            tcp_packet(payload=b"HTTP/1.1 200 OK\r\n\r\nhello"),
            tcp_packet(flags=tcpmod.RST | tcpmod.ACK),
        ]
        assert classify_outcome(packets, DEFAULT_MATCHER) == TYPE_NORMAL

    def test_fin_only_is_fin(self):
        packets = [tcp_packet(flags=tcpmod.FIN | tcpmod.ACK)]
        assert classify_outcome(packets, DEFAULT_MATCHER) == TYPE_FIN


class TestCollectOutcomeEvidence:
    @pytest.fixture(scope="class")
    def world_and_evidence(self):
        world = tomography_world("i0>a1", seed=5)
        evidence = collect_outcome_evidence(
            world, domains=[TOMO_DOMAIN], rounds=6, probes_per_round=4
        )
        return world, evidence

    def test_one_record_per_probe(self, world_and_evidence):
        _, evidence = world_and_evidence
        # 6 rounds x 2 endpoints x 4 probes
        assert len(evidence) == 48
        assert all(e.source == SOURCE_OUTCOME for e in evidence)

    def test_links_start_at_client(self, world_and_evidence):
        world, evidence = world_and_evidence
        client = world.remote_client.name
        for item in evidence:
            assert item.links[0][0] == client
            assert item.link_set() == frozenset(item.links)

    def test_churn_samples_multiple_paths(self, world_and_evidence):
        _, evidence = world_and_evidence
        # Four candidate paths per endpoint; churn + per-flow hashing
        # must surface more than one distinct link set.
        link_sets = {e.link_set() for e in evidence}
        assert len(link_sets) > 1
        assert len({e.epoch for e in evidence}) > 1

    def test_outcomes_depend_on_path(self, world_and_evidence):
        _, evidence = world_and_evidence
        # Device on i0->a1: the two a-side paths block, b-side are clean.
        blocked = [e for e in evidence if e.blocked]
        clean = [e for e in evidence if not e.blocked]
        assert blocked and clean
        for item in blocked:
            assert ("r2", "r3") in item.links  # i0 -> a1


class TestEvidenceFromTrace:
    def test_wraps_centrace_result(self):
        from repro.core.centrace import CenTrace, CenTraceConfig

        world = tomography_world("client>i0", seed=7)
        client = world.remote_client
        tracer = CenTrace(
            world.sim, client, asdb=world.asdb,
            config=CenTraceConfig(max_ttl=12),
        )
        endpoint = world.endpoints[0]
        result = tracer.measure(endpoint.ip, TOMO_DOMAIN)
        assert result.blocked
        route = world.topology.route_between(client.ip, endpoint.ip)
        record = evidence_from_trace(
            result, route=route, origin=client.name, client_ip=client.ip
        )
        assert isinstance(record, PathEvidence)
        assert record.source == SOURCE_CENTRACE
        assert record.blocked
        assert record.terminating_ttl is not None
        assert record.links[0][0] == client.name
        # Nominal path runs client -> ... -> endpoint.
        assert record.links[-1][1] == endpoint.name
