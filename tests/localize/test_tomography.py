"""TomographyLocalizer: intersection/elimination over synthetic
evidence, independent of any simulator."""

from repro.core.centrace.results import TYPE_NORMAL, TYPE_RST
from repro.localize import PathEvidence, TomographyLocalizer

EP1, EP2 = "10.0.1.1", "10.0.1.2"
DOMAIN = "blocked.example"

# A tiny diamond: shared ingress, two branches, per-endpoint tail.
INGRESS = ("c", "i")
A = (("i", "a"), ("a", "j"))
B = (("i", "b"), ("b", "j"))
TAIL1 = (("j", "t1"), ("t1", "e1"))
TAIL2 = (("j", "t2"), ("t2", "e2"))


def probe(endpoint_ip, links, blocked, *, domain=DOMAIN, epoch=0, sport=40000):
    return PathEvidence(
        client_ip="10.9.0.1",
        endpoint_ip=endpoint_ip,
        domain=domain,
        protocol="http",
        sport=sport,
        dport=80,
        outcome=TYPE_RST if blocked else TYPE_NORMAL,
        blocked=blocked,
        links=links,
        epoch=epoch,
    )


def path_a(tail=TAIL1):
    return (INGRESS,) + A + tail


def path_b(tail=TAIL1):
    return (INGRESS,) + B + tail


class TestIntersectionElimination:
    def test_branch_device_isolated_exactly(self):
        # Blocked only via branch A; clean via branch B. Intersection of
        # blocked sets = path A links; clean elimination removes the
        # shared ingress and tail, leaving exactly branch A.
        evidence = [
            probe(EP1, path_a(), True, epoch=0),
            probe(EP1, path_a(), True, epoch=1),
            probe(EP1, path_b(), False, epoch=0),
            probe(EP1, path_b(), False, epoch=1),
        ]
        verdicts = TomographyLocalizer().localize(evidence)
        assert len(verdicts) == 1
        assert set(verdicts[0].candidate_links) == set(A)
        assert verdicts[0].hop_low == 1 and verdicts[0].hop_high == 2

    def test_all_paths_blocked_narrows_to_shared_links(self):
        # Device on the shared ingress: every path blocks, nothing is
        # clean for this endpoint — candidates are the common links.
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_b(), True),
        ]
        verdicts = TomographyLocalizer().localize(evidence)
        (verdict,) = verdicts
        assert set(verdict.candidate_links) == {INGRESS} | set(TAIL1)

    def test_clean_elimination_is_per_domain_across_endpoints(self):
        # EP1 sees only blocked probes, but EP2's clean probe for the
        # same domain traversed the shared ingress — so the ingress is
        # eliminated for EP1 too, and only A remains.
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP2, path_b(TAIL2), False),
            probe(EP1, ((("c", "i"),) + A + TAIL1), True),
        ]
        verdicts = TomographyLocalizer(refine_across_endpoints=False).localize(
            evidence
        )
        (verdict,) = verdicts
        assert INGRESS not in verdict.candidate_links
        assert set(verdict.candidate_links) == set(A) | set(TAIL1)

    def test_other_domains_do_not_eliminate(self):
        # A clean probe for a DIFFERENT domain proves nothing about
        # this device's links (it may simply not block that domain).
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_a(), False, domain="other.example"),
        ]
        verdicts = TomographyLocalizer().localize(evidence)
        (verdict,) = verdicts
        assert verdict.domain == DOMAIN
        assert set(verdict.candidate_links) == set(path_a())

    def test_cross_endpoint_refinement_narrows_shared_device(self):
        # Both endpoints block on everything; their candidate sets
        # share only the ingress -> the refinement pins the ingress.
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_b(), True),
            probe(EP2, path_a(TAIL2), True),
            probe(EP2, path_b(TAIL2), True),
        ]
        verdicts = TomographyLocalizer().localize(evidence)
        assert len(verdicts) == 2
        for verdict in verdicts:
            assert verdict.candidate_links == (INGRESS,)
            assert verdict.hop_low == verdict.hop_high == 0

    def test_refinement_can_be_disabled(self):
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_b(), True),
            probe(EP2, path_a(TAIL2), True),
            probe(EP2, path_b(TAIL2), True),
        ]
        verdicts = TomographyLocalizer(refine_across_endpoints=False).localize(
            evidence
        )
        for verdict in verdicts:
            assert len(verdict.candidate_links) == 3  # ingress + tail

    def test_contradiction_falls_back_to_intersection(self):
        # A flaky device fails open once on the same path: elimination
        # would empty the candidate set; the verdict keeps the
        # intersection instead of claiming nothing.
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_a(), False),
        ]
        (verdict,) = TomographyLocalizer().localize(evidence)
        assert set(verdict.candidate_links) == set(path_a())

    def test_no_blocking_no_verdicts(self):
        evidence = [probe(EP1, path_a(), False)]
        assert TomographyLocalizer().localize(evidence) == []

    def test_confidence_grows_with_narrowing(self):
        narrow = TomographyLocalizer().localize(
            [
                probe(EP1, path_a(), True),
                probe(EP1, path_b(), False),
            ]
        )[0]
        broad = TomographyLocalizer().localize(
            [probe(EP1, path_a(), True)]
        )[0]
        assert narrow.confidence > broad.confidence

    def test_candidates_ordered_client_outward(self):
        evidence = [
            probe(EP1, path_a(), True),
            probe(EP1, path_b(), True),
        ]
        (verdict,) = TomographyLocalizer().localize(evidence)
        indices = [
            {INGRESS: 0, TAIL1[0]: 3, TAIL1[1]: 4}[link]
            for link in verdict.candidate_links
        ]
        assert indices == sorted(indices)
