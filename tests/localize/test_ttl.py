"""TtlLocalizer: CenTrace-derived evidence re-voted behind the
Localizer protocol."""

from repro.core.centrace.results import TYPE_RST
from repro.localize import PathEvidence, SOURCE_CENTRACE, TtlLocalizer

EP = "10.0.1.1"
LINKS = (("c", "i"), ("i", "a"), ("a", "j"), ("j", "e"))


def trace(ttl, hop_ip="10.0.0.2", links=LINKS, blocked=True):
    return PathEvidence(
        client_ip="10.9.0.1",
        endpoint_ip=EP,
        domain="blocked.example",
        protocol="http",
        sport=0,
        dport=0,
        outcome=TYPE_RST,
        blocked=blocked,
        links=links,
        source=SOURCE_CENTRACE,
        terminating_ttl=ttl,
        blocking_hop_ip=hop_ip,
    )


class TestTtlLocalizer:
    def test_single_trace_claims_link_at_ttl(self):
        (verdict,) = TtlLocalizer().localize([trace(2)])
        # Device TTL 2 -> the link INTO the hop at TTL 2 -> index 1.
        assert verdict.candidate_links == (("i", "a"),)
        assert verdict.hop_low == verdict.hop_high == 1
        assert "device_ttl=2" in verdict.detail

    def test_majority_ttl_wins(self):
        traces = [trace(2), trace(2), trace(3)]
        (verdict,) = TtlLocalizer().localize(traces)
        assert verdict.candidate_links == (("i", "a"),)
        # Confidence discounted by the dissenting repetition.
        assert verdict.confidence < 1.0
        assert verdict.evidence_count == 3

    def test_plain_outcome_evidence_is_ignored(self):
        outcome_only = PathEvidence(
            client_ip="10.9.0.1",
            endpoint_ip=EP,
            domain="blocked.example",
            protocol="http",
            sport=40000,
            dport=80,
            outcome=TYPE_RST,
            blocked=True,
            links=LINKS,
        )
        assert TtlLocalizer().localize([outcome_only]) == []

    def test_unblocked_traces_are_ignored(self):
        assert TtlLocalizer().localize([trace(2, blocked=False)]) == []

    def test_off_path_ttl_keeps_interval(self):
        # "Past E" attribution: TTL beyond the path. No link to name,
        # but the claim stays comparable via the interval.
        (verdict,) = TtlLocalizer().localize([trace(9)])
        assert verdict.candidate_links == ()
        assert verdict.hop_low == verdict.hop_high == 8
