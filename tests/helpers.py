"""Shared test scaffolding: small hand-built worlds.

Most unit and scenario tests use a linear topology — client, a chain of
routers, one endpoint — with a single device attached at a chosen link,
mirroring Figure 2's diagrams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.devices.base import CensorshipDevice
from repro.devices.vendors import VendorProfile, make_device
from repro.geo.asdb import ASDatabase
from repro.netsim.routing import Hop, Path, Route
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Client, Endpoint, Router, Topology
from repro.services.webserver import ServerProfile, WebServer

CLIENT_IP = "100.64.0.1"
ENDPOINT_IP = "100.96.0.1"
BLOCKED_DOMAIN = "www.blocked.example"
OK_DOMAIN = "www.ok.example"
CONTROL_DOMAIN = "www.example.com"


@dataclass
class LinearWorld:
    """A straight-line topology with an optional device on one link."""

    topology: Topology
    sim: Simulator
    client: Client
    endpoint: Endpoint
    routers: List[Router]
    device: Optional[CensorshipDevice]
    device_link: Optional[int]
    asdb: ASDatabase = field(default_factory=ASDatabase)

    @property
    def endpoint_distance(self) -> int:
        """Hop count (TTL) at which the endpoint answers."""
        return len(self.routers) + 1


def build_linear_world(
    *,
    n_routers: int = 5,
    device: Optional[CensorshipDevice] = None,
    device_link: int = 2,
    server: Optional[WebServer] = None,
    server_profile: Optional[ServerProfile] = None,
    loss_rate: float = 0.0,
    seed: int = 7,
    silent_routers: Sequence[int] = (),
    endpoint_domains: Sequence[str] = (OK_DOMAIN,),
) -> LinearWorld:
    """Client -> r0..r{n-1} -> endpoint, device on link to router
    ``device_link`` (0-based)."""
    topology = Topology("test-linear")
    client = topology.add_client(
        Client("client", CLIENT_IP, asn=64500, country="XX", in_country=True)
    )
    routers = []
    for i in range(n_routers):
        routers.append(
            topology.add_router(
                Router(
                    f"r{i}",
                    f"100.80.{i}.1",
                    asn=64501 + i,
                    responds_icmp=i not in silent_routers,
                )
            )
        )
    if server is None:
        server = WebServer(endpoint_domains, server_profile or ServerProfile())
    endpoint = topology.add_endpoint(
        Endpoint("endpoint", ENDPOINT_IP, asn=64999, server=server, country="XX")
    )
    hops = []
    for i, router in enumerate(routers):
        devices = [device] if (device is not None and i == device_link) else []
        hops.append(Hop(router.name, link_devices=devices))
    hops.append(Hop(endpoint.name))
    topology.add_route(client.ip, endpoint.ip, Route([Path(hops)]))
    sim = Simulator(topology, seed=seed, loss_rate=loss_rate)
    return LinearWorld(
        topology=topology,
        sim=sim,
        client=client,
        endpoint=endpoint,
        routers=routers,
        device=device,
        device_link=device_link if device is not None else None,
    )


def make_profile_device(
    profile: VendorProfile,
    domains: Sequence[str] = (BLOCKED_DOMAIN,),
    **kwargs,
) -> CensorshipDevice:
    return make_device(profile, "test-device", domains, **kwargs)
