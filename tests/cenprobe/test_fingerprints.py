"""Recog-style fingerprint repository."""

import pytest

from repro.core.cenprobe.fingerprints import (
    DEFAULT_REPOSITORY,
    FingerprintRepository,
    FingerprintRule,
    RULES,
)


class TestRules:
    def test_fortinet_ssh(self):
        rule = DEFAULT_REPOSITORY.match("ssh", "SSH-2.0-FortiSSH_1.0")
        assert rule is not None and rule.vendor == "Fortinet"

    def test_cisco_telnet(self):
        rule = DEFAULT_REPOSITORY.match("telnet", "User Access Verification\r\nPassword:")
        assert rule.vendor == "Cisco"

    def test_mikrotik_ftp(self):
        rule = DEFAULT_REPOSITORY.match("ftp", "220 MikroTik FTP server ready")
        assert rule.vendor == "Mikrotik"

    def test_protocol_scoping(self):
        # A Cisco SSH banner seen on FTP must not match the SSH rule.
        assert DEFAULT_REPOSITORY.match("ftp", "SSH-2.0-Cisco-1.25") is None

    def test_case_insensitive(self):
        rule = DEFAULT_REPOSITORY.match("http", "server: DDOS-GUARD")
        assert rule.vendor == "DDoS-Guard"

    def test_generic_openssh_not_filtering(self):
        vendor = DEFAULT_REPOSITORY.match_filtering_vendor(
            "ssh", "SSH-2.0-OpenSSH_8.2p1"
        )
        assert vendor is None
        rule = DEFAULT_REPOSITORY.match("ssh", "SSH-2.0-OpenSSH_8.2p1")
        assert rule is not None and not rule.is_filtering_product

    def test_no_match_returns_none(self):
        assert DEFAULT_REPOSITORY.match("ssh", "SSH-2.0-dropbear") is None

    def test_every_rule_has_valid_regex(self):
        import re

        for rule in RULES:
            re.compile(rule.pattern)

    def test_custom_repository_add(self):
        repo = FingerprintRepository(rules=[])
        assert repo.match("ssh", "SSH-2.0-FortiSSH") is None
        repo.add(
            FingerprintRule(
                name="x", protocols=("ssh",), pattern="FortiSSH", vendor="Fortinet"
            )
        )
        assert repo.match("ssh", "SSH-2.0-FortiSSH").vendor == "Fortinet"

    def test_all_labeled_vendor_profiles_have_fingerprints(self):
        """Every labeled vendor's management services must be matchable."""
        from repro.devices.vendors import LABELED_PROFILES

        for key, profile in LABELED_PROFILES.items():
            matched = False
            for service in profile.management_services():
                text = service.banner.decode("utf-8", "replace")
                for probe, response in service.probe_responses.items():
                    text += "\n" + response.decode("utf-8", "replace")
                if DEFAULT_REPOSITORY.match_filtering_vendor(service.protocol, text):
                    matched = True
            assert matched, f"{key}: no fingerprintable service"
