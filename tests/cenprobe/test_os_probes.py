"""Nmap-style crafted-probe OS fingerprinting (§5.1)."""

import pytest

from repro.core.cenprobe.os_probes import (
    CISCO_IOS,
    FORTIOS,
    LINUX,
    OS_FEATURE_NAMES,
    OSPersonality,
    OSProber,
    PERSONALITIES,
    VENDOR_PERSONALITIES,
)
from repro.netsim.topology import Router, Service, Topology


def _topology(personality=None, with_port=True):
    topo = Topology("os-test")
    router = topo.add_router(Router("r1", "10.0.0.1", asn=1))
    router.personality = personality
    if with_port:
        router.add_service(Service(port=22, protocol="ssh", banner=b"SSH-2.0-x\r\n"))
    return topo


class TestPersonalities:
    def test_catalog_names_unique(self):
        assert len(PERSONALITIES) == len({p.name for p in PERSONALITIES.values()})

    def test_every_labeled_vendor_has_a_personality(self):
        from repro.devices.vendors import LABELED_PROFILES

        for profile in LABELED_PROFILES.values():
            assert profile.name in VENDOR_PERSONALITIES

    def test_personalities_produce_distinct_features(self):
        prober_features = []
        for personality in PERSONALITIES.values():
            topo = _topology(personality)
            result = OSProber(topo).probe("10.0.0.1")
            prober_features.append(tuple(sorted(result.features.items())))
        assert len(set(prober_features)) == len(prober_features)


class TestProber:
    def test_fortios_signature(self):
        result = OSProber(_topology(FORTIOS)).probe("10.0.0.1")
        assert result.responsive
        assert result.personality_name == "FortiOS"
        assert result.feature("OSInitialTTL") == 255
        assert result.feature("OSSynAckWindow") == 16384
        assert result.feature("OSECN") == 0.0

    def test_cisco_suppresses_icmp_unreachable(self):
        result = OSProber(_topology(CISCO_IOS)).probe("10.0.0.1")
        assert result.feature("OSIcmpUnreachable") == 0.0
        assert result.feature("OSIpIdClass") == 2.0  # random

    def test_default_personality_is_linux(self):
        result = OSProber(_topology(None)).probe("10.0.0.1")
        assert result.personality_name == LINUX.name

    def test_no_open_port_limits_features(self):
        result = OSProber(_topology(FORTIOS, with_port=False)).probe("10.0.0.1")
        assert result.feature("OSSynAckWindow") is None
        assert result.feature("OSInitialTTL") == 255  # closed-port RST still talks

    def test_unknown_ip_unresponsive(self):
        result = OSProber(_topology(None)).probe("203.0.113.1")
        assert not result.responsive
        assert result.features == {}

    def test_feature_names_constant_covers_everything(self):
        result = OSProber(_topology(FORTIOS)).probe("10.0.0.1")
        assert set(result.features) <= set(OS_FEATURE_NAMES)


class TestIntegration:
    def test_cenprobe_includes_os_features(self):
        from repro.core.cenprobe import CenProbe
        from repro.geo.countries import build_kz_world

        world = build_kz_world(scale=0.3)
        prober = CenProbe(world.topology)
        fortinet_ip = None
        for name, ip in world.device_host_ip.items():
            report = prober.scan(ip)
            if report.vendor == "Fortinet":
                fortinet_ip = ip
                assert report.os_name == "FortiOS"
                assert report.os_features["OSInitialTTL"] == 255
        assert fortinet_ip is not None

    def test_feature_extraction_uses_os_features(self):
        from repro.analysis.features import extract_features
        from repro.core.cenprobe.scanner import ProbeReport
        from repro.core.centrace.results import CenTraceResult

        trace = CenTraceResult(
            endpoint_ip="10.0.0.9", endpoint_asn=1, test_domain="x",
            protocol="http", blocked=True, blocking_type="TIMEOUT",
        )
        probe = ProbeReport(
            ip="10.0.0.1", reachable=True,
            os_features={"OSInitialTTL": 255.0, "OSSynAckWindow": 16384.0},
        )
        features = extract_features("10.0.0.9", [trace], probe_report=probe)
        assert features.values["OSInitialTTL"] == 255.0
        assert features.values["OSSynAckWindow"] == 16384.0
