"""CenProbe scanning and labeling."""

import pytest

from repro.core.cenprobe import CenProbe, summarize_reports
from repro.devices.vendors import CISCO, FORTINET, MIKROTIK
from repro.netsim.topology import Router, Topology
from repro.services.banners import generic_linux_services


def _topology_with(vendor_profile=None, generic=False, ip="10.0.0.1"):
    topo = Topology("scan-test")
    router = topo.add_router(Router("r1", ip, asn=1))
    if vendor_profile is not None:
        for service in vendor_profile.management_services():
            router.add_service(service)
    if generic:
        for service in generic_linux_services():
            router.add_service(service)
    return topo


class TestScan:
    def test_vendor_labeled(self):
        probe = CenProbe(_topology_with(FORTINET))
        report = probe.scan("10.0.0.1")
        assert report.reachable
        assert report.vendor == "Fortinet"
        assert report.matched_rule.startswith("fortinet.")

    def test_cisco_via_snmp_or_telnet(self):
        report = CenProbe(_topology_with(CISCO)).scan("10.0.0.1")
        assert report.vendor == "Cisco"

    def test_mikrotik_multi_protocol(self):
        report = CenProbe(_topology_with(MIKROTIK)).scan("10.0.0.1")
        assert report.vendor == "Mikrotik"
        assert 21 in report.open_ports

    def test_closed_host_no_services(self):
        report = CenProbe(_topology_with(None)).scan("10.0.0.1")
        assert report.reachable and not report.has_services
        assert report.vendor is None

    def test_unknown_ip_unreachable(self):
        report = CenProbe(_topology_with(None)).scan("203.0.113.1")
        assert not report.reachable

    def test_generic_services_identified_but_not_filtering(self):
        report = CenProbe(_topology_with(None, generic=True)).scan("10.0.0.1")
        assert report.has_services
        assert report.vendor is None
        assert "OpenSSH" in report.other_identifications or "nginx" in report.other_identifications

    def test_grabs_include_banner_text(self):
        report = CenProbe(_topology_with(FORTINET)).scan("10.0.0.1")
        texts = " ".join(g.text() for g in report.grabs)
        assert "FortiSSH" in texts

    def test_scan_many(self):
        topo = _topology_with(FORTINET)
        topo.add_router(Router("r2", "10.0.0.2", asn=1))
        reports = CenProbe(topo).scan_many(["10.0.0.1", "10.0.0.2"])
        assert len(reports) == 2
        assert reports[0].vendor == "Fortinet" and reports[1].vendor is None


class TestSummary:
    def test_summarize(self):
        topo = _topology_with(FORTINET)
        topo.add_router(Router("r2", "10.0.0.2", asn=1))
        probe = CenProbe(topo)
        summary = summarize_reports(probe.scan_many(["10.0.0.1", "10.0.0.2"]))
        assert summary["total"] == 2
        assert summary["with_services"] == 1
        assert summary["labeled_filtering"] == 1
        assert summary["vendor:Fortinet"] == 1
