"""FilterMap-style blockpage clustering (§3.3)."""

import pytest

from repro.core.filtermap import (
    FilterMap,
    jaccard,
    normalize,
    shingles,
)
from repro.devices.vendors import (
    FORTINET_BLOCKPAGE,
    ISP_RU_BLOCKPAGE,
    NETSWEEPER_BLOCKPAGE,
    SONICWALL_BLOCKPAGE,
    SQUID_BLOCKPAGE,
)


def _variant(page: str, n: int) -> str:
    """A realistic injection variant: different volatile bits."""
    return page.replace(
        "</body></html>", f"<!-- req {1000 + n} http://host{n}/ --></body></html>"
    )


class TestNormalization:
    def test_strips_tags_and_volatiles(self):
        tokens = normalize("<html><b>Access denied</b> at 10.0.0.1 #deadbeef12</html>")
        assert "access" in tokens and "denied" in tokens
        assert not any(t.startswith("10") or t == "deadbeef12" for t in tokens)

    def test_shingles_and_jaccard(self):
        a = shingles(["a", "b", "c", "d"], k=3)
        b = shingles(["a", "b", "c", "e"], k=3)
        assert 0 < jaccard(a, b) < 1
        assert jaccard(a, a) == 1.0
        assert jaccard(frozenset(), frozenset()) == 1.0
        assert jaccard(a, frozenset()) == 0.0


class TestClustering:
    def test_same_vendor_variants_cluster_together(self):
        filtermap = FilterMap()
        for i in range(4):
            filtermap.add_page(_variant(FORTINET_BLOCKPAGE, i), source=f"ep{i}")
        clusters = filtermap.clusters()
        assert len(clusters) == 1
        assert clusters[0].size == 4

    def test_different_vendors_separate(self):
        filtermap = FilterMap()
        pages = [
            FORTINET_BLOCKPAGE,
            NETSWEEPER_BLOCKPAGE,
            SONICWALL_BLOCKPAGE,
            SQUID_BLOCKPAGE,
            ISP_RU_BLOCKPAGE,
        ]
        for page in pages:
            for i in range(3):
                filtermap.add_page(_variant(page, i))
        clusters = filtermap.clusters()
        assert len(clusters) == len(pages)
        assert all(c.size == 3 for c in clusters)

    def test_legitimate_pages_do_not_join_blockpage_clusters(self):
        filtermap = FilterMap()
        for i in range(3):
            filtermap.add_page(_variant(FORTINET_BLOCKPAGE, i))
        filtermap.add_page(
            "<html><head><title>Acme Corp</title></head>"
            "<body>Welcome to our homepage. Products and services.</body></html>"
        )
        clusters = filtermap.clusters()
        sizes = sorted(c.size for c in clusters)
        assert sizes == [1, 3]

    def test_min_size_filter(self):
        filtermap = FilterMap()
        filtermap.add_page(FORTINET_BLOCKPAGE)
        filtermap.add_page(SQUID_BLOCKPAGE)
        assert filtermap.clusters(min_size=2) == []


class TestFingerprintSuggestion:
    def test_suggested_fingerprints_match_their_cluster(self):
        filtermap = FilterMap()
        for i in range(3):
            filtermap.add_page(_variant(FORTINET_BLOCKPAGE, i))
            filtermap.add_page(_variant(SQUID_BLOCKPAGE, i))
        suggestions = filtermap.suggest_fingerprints(min_size=2)
        assert len(suggestions) == 2
        matched = 0
        for fingerprint in suggestions:
            assert fingerprint.matches(FORTINET_BLOCKPAGE) != fingerprint.matches(
                SQUID_BLOCKPAGE
            )
            matched += 1
        assert matched == 2

    def test_suggestions_are_distinctive_tokens(self):
        filtermap = FilterMap()
        for i in range(3):
            filtermap.add_page(_variant(FORTINET_BLOCKPAGE, i))
            filtermap.add_page(_variant(ISP_RU_BLOCKPAGE, i))
        suggestions = filtermap.suggest_fingerprints(min_size=2)
        patterns = " ".join(s.pattern for s in suggestions).lower()
        assert "fortiguard" in patterns or "blocked" in patterns

    def test_suggestion_feeds_blockpage_matcher(self):
        from repro.core.blockpages import BlockpageMatcher

        filtermap = FilterMap()
        custom = (
            "<html><body>Zugriff verweigert durch NationalFilter"
            " Gateway</body></html>"
        )
        for i in range(3):
            filtermap.add_page(_variant(custom, i))
        suggestion = filtermap.suggest_fingerprints(min_size=2)[0]
        matcher = BlockpageMatcher(fingerprints=[suggestion])
        assert matcher.match_body(custom) is not None
        assert matcher.match_body("<html>perfectly fine page</html>") is None
