"""CenFuzz runner: evaluation semantics (§6.2) and classification."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import (
    BLOCKED_DOMAIN,
    CONTROL_DOMAIN,
    ENDPOINT_IP,
    OK_DOMAIN,
    build_linear_world,
    make_profile_device,
)

from repro.core.cenfuzz import CenFuzz
from repro.core.cenfuzz.runner import (
    OUTCOME_BLOCKPAGE,
    OUTCOME_RESPONSE,
    OUTCOME_RST,
    OUTCOME_TIMEOUT,
)
from repro.core.cenfuzz.strategies import normal_permutation
from repro.devices.vendors import BY_DPI, FORTINET, KZ_STATE
from repro.services.webserver import ServerProfile, WebServer


def _world(profile=KZ_STATE, **kwargs):
    device = make_profile_device(profile) if profile else None
    return build_linear_world(
        device=device,
        device_link=2,
        endpoint_domains=(OK_DOMAIN, BLOCKED_DOMAIN),
        **kwargs,
    )


class TestProbeClassification:
    def test_drop_is_timeout(self):
        world = _world(KZ_STATE)
        fuzzer = CenFuzz(world.sim, world.client)
        outcome = fuzzer.probe(ENDPOINT_IP, normal_permutation("http"), BLOCKED_DOMAIN)
        assert outcome.outcome == OUTCOME_TIMEOUT and outcome.blocked

    def test_clean_domain_is_response(self):
        world = _world(KZ_STATE)
        fuzzer = CenFuzz(world.sim, world.client)
        outcome = fuzzer.probe(ENDPOINT_IP, normal_permutation("http"), OK_DOMAIN)
        assert outcome.outcome == OUTCOME_RESPONSE and not outcome.blocked
        assert outcome.status_code == 200
        assert outcome.served(OK_DOMAIN)

    def test_blockpage_detected(self):
        world = _world(FORTINET)
        fuzzer = CenFuzz(world.sim, world.client)
        outcome = fuzzer.probe(ENDPOINT_IP, normal_permutation("http"), BLOCKED_DOMAIN)
        assert outcome.outcome == OUTCOME_BLOCKPAGE and outcome.blocked

    def test_onpath_rst_beats_late_content(self):
        # On-path injectors race the endpoint; the RST arrives first
        # and the client's connection dies — must classify as RST.
        world = _world(BY_DPI)
        fuzzer = CenFuzz(world.sim, world.client)
        outcome = fuzzer.probe(ENDPOINT_IP, normal_permutation("http"), BLOCKED_DOMAIN)
        assert outcome.outcome == OUTCOME_RST and outcome.blocked

    def test_tls_served_marker_parsed(self):
        world = _world(None)
        fuzzer = CenFuzz(world.sim, world.client)
        outcome = fuzzer.probe(ENDPOINT_IP, normal_permutation("tls"), OK_DOMAIN)
        assert outcome.outcome == OUTCOME_RESPONSE
        assert outcome.served(OK_DOMAIN)


class TestEvaluationSemantics:
    def test_successful_requires_normal_blocked(self):
        world = _world(None)  # nothing blocked at all
        fuzzer = CenFuzz(world.sim, world.client)
        report = fuzzer.run_endpoint(
            ENDPOINT_IP, OK_DOMAIN, "http", CONTROL_DOMAIN,
            strategies=["Get Word Alt."],
        )
        assert not report.normal_blocked
        assert all(
            not (r.successful or r.unsuccessful) for r in report.results
        )

    def test_success_and_failure_partition(self):
        world = _world(KZ_STATE)
        fuzzer = CenFuzz(world.sim, world.client)
        report = fuzzer.run_endpoint(
            ENDPOINT_IP, BLOCKED_DOMAIN, "http", CONTROL_DOMAIN,
            strategies=["Get Word Alt."],
        )
        assert report.normal_blocked
        for result in report.results:
            assert result.successful != result.unsuccessful

    def test_method_results_match_device_quirks(self):
        # KZ_STATE triggers on GET/POST/PUT only.
        world = _world(KZ_STATE)
        fuzzer = CenFuzz(world.sim, world.client)
        report = fuzzer.run_endpoint(
            ENDPOINT_IP, BLOCKED_DOMAIN, "http", CONTROL_DOMAIN,
            strategies=["Get Word Alt."],
        )
        outcome = {r.label: r.successful for r in report.results}
        assert outcome["POST"] is False
        assert outcome["PUT"] is False
        assert outcome["PATCH"] is True
        assert outcome["XXXX"] is True

    def test_strategy_filter_limits_work(self):
        world = _world(KZ_STATE)
        fuzzer = CenFuzz(world.sim, world.client)
        report = fuzzer.run_endpoint(
            ENDPOINT_IP, BLOCKED_DOMAIN, "http", CONTROL_DOMAIN,
            strategies=["Path Alt."],
        )
        assert {r.strategy for r in report.results} == {"Path Alt."}
        assert len(report.results) == 8

    def test_success_by_strategy_counts(self):
        world = _world(KZ_STATE)
        fuzzer = CenFuzz(world.sim, world.client)
        report = fuzzer.run_endpoint(
            ENDPOINT_IP, BLOCKED_DOMAIN, "http", CONTROL_DOMAIN,
            strategies=["Get Word Alt.", "Get Word Cap."],
        )
        rates = report.success_by_strategy()
        ok, evaluated = rates["Get Word Alt."]
        assert evaluated == 6 and ok == 4
        ok_cap, evaluated_cap = rates["Get Word Cap."]
        assert evaluated_cap == 8 and ok_cap == 0


class TestCircumvention:
    def test_circumvention_requires_served_content(self):
        # A lenient endpoint serves padded Hosts -> circumvention; the
        # KZ_STATE device uses an exact rule here so pads evade.
        device = make_profile_device(KZ_STATE, rule_kind="exact")
        world = build_linear_world(
            device=device,
            device_link=2,
            endpoint_domains=(BLOCKED_DOMAIN,),
            server=WebServer(
                [BLOCKED_DOMAIN], ServerProfile.lenient(BLOCKED_DOMAIN)
            ),
        )
        fuzzer = CenFuzz(world.sim, world.client)
        report = fuzzer.run_endpoint(
            ENDPOINT_IP, BLOCKED_DOMAIN, "http", CONTROL_DOMAIN,
            strategies=["Hostname Pad."],
        )
        padded = [r for r in report.results if r.successful]
        assert padded
        assert all(r.circumvented for r in padded)

    def test_evasion_without_circumvention_on_strict_server(self):
        device = make_profile_device(KZ_STATE, rule_kind="exact")
        world = build_linear_world(
            device=device,
            device_link=2,
            endpoint_domains=(BLOCKED_DOMAIN,),
        )
        fuzzer = CenFuzz(world.sim, world.client)
        report = fuzzer.run_endpoint(
            ENDPOINT_IP, BLOCKED_DOMAIN, "http", CONTROL_DOMAIN,
            strategies=["Hostname Pad."],
        )
        evaded = [r for r in report.results if r.successful]
        assert evaded
        assert all(not r.circumvented for r in evaded)
