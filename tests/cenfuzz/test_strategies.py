"""CenFuzz strategy registry: Table 2 counts and payload properties."""

import pytest

from repro.core.cenfuzz.strategies import (
    all_strategies,
    http_strategies,
    normal_permutation,
    pad_variants,
    strategy_catalog,
    swap_subdomain,
    swap_tld,
    tls_strategies,
)
from repro.netmodel.http import parse_request
from repro.netmodel.tls import parse_client_hello

DOMAIN = "www.blocked.example"

TABLE2 = {
    "Get Word Alt.": 6,
    "Http Word Alt.": 16,
    "Host Word Alt.": 7,
    "Path Alt.": 8,
    "Hostname Alt.": 5,
    "Hostname TLD Alt.": 10,
    "Host. Subdomain Alt.": 10,
    "Header Alt.": 59,
    "Get Word Cap.": 8,
    "Http Word Cap.": 16,
    "Host Word Cap.": 16,
    "Get Word Rem.": 7,
    "Http Word Rem.": 167,
    "Host Word Rem.": 63,
    "Http Delimiter Rem.": 3,
    "Hostname Pad.": 9,
    "Min Version Alt.": 4,
    "Max Version Alt.": 4,
    "CipherSuite Alt.": 25,
    "Client Certificate Alt.": 3,
    "SNI Alt.": 4,
    "SNI TLD Alt.": 10,
    "SNI Subdomain Alt.": 10,
    "SNI Pad.": 9,
}


class TestCatalog:
    def test_permutation_counts_match_table2(self):
        strategies = all_strategies()
        for name, expected in TABLE2.items():
            assert len(strategies[name]) == expected, name

    def test_total_counts(self):
        assert sum(len(v) for v in http_strategies().values()) == 410
        assert sum(len(v) for v in tls_strategies().values()) == 69

    def test_catalog_rows_cover_all_strategies(self):
        rows = strategy_catalog()
        assert {row[1] for row in rows} == set(TABLE2)

    def test_every_payload_builds(self):
        for name, permutations in all_strategies().items():
            for permutation in permutations:
                payload = permutation.payload(DOMAIN)
                assert isinstance(payload, bytes) and payload, (name, permutation.label)

    def test_labels_unique_within_strategy(self):
        for name, permutations in all_strategies().items():
            labels = [p.label for p in permutations]
            assert len(set(labels)) == len(labels), name

    def test_payloads_deterministic(self):
        strategies = all_strategies()
        again = all_strategies()
        for name in TABLE2:
            for a, b in zip(strategies[name], again[name]):
                assert a.payload(DOMAIN) == b.payload(DOMAIN)


class TestHTTPPermutations:
    def test_get_word_alt_includes_put_patch_empty(self):
        labels = {p.label for p in all_strategies()["Get Word Alt."]}
        assert {"POST", "PUT", "PATCH", "<empty>"} <= labels

    def test_path_alt_changes_only_path(self):
        for permutation in all_strategies()["Path Alt."]:
            parsed = parse_request(permutation.payload(DOMAIN))
            assert parsed.host == DOMAIN
            assert parsed.path != "/"

    def test_hostname_pad_leading_and_trailing(self):
        payloads = [
            p.payload(DOMAIN) for p in all_strategies()["Hostname Pad."]
        ]
        assert any(b"*" + DOMAIN.encode() in p for p in payloads)
        assert any(DOMAIN.encode() + b"*" in p for p in payloads)

    def test_delimiter_removal_variants(self):
        labels = {p.label for p in all_strategies()["Http Delimiter Rem."]}
        assert labels == {"CR", "LF", "<none>"}

    def test_host_word_removal_mangles_host_token(self):
        hits = 0
        for permutation in all_strategies()["Host Word Rem."]:
            payload = permutation.payload(DOMAIN)
            if b"Host: " not in payload:
                hits += 1
        assert hits >= 62  # all but (at most) the identity-like variant

    def test_header_alt_adds_exactly_one_header(self):
        base_lines = (
            all_strategies()["Header Alt."][0].payload(DOMAIN).count(b"\r\n")
        )
        for permutation in all_strategies()["Header Alt."]:
            assert permutation.payload(DOMAIN).count(b"\r\n") == base_lines


class TestTLSPermutations:
    def test_cipher_alt_offers_single_suite(self):
        for permutation in all_strategies()["CipherSuite Alt."]:
            parsed = parse_client_hello(permutation.payload(DOMAIN))
            assert len(parsed.cipher_suites) == 1

    def test_sni_alt_includes_omission(self):
        payload_by_label = {
            p.label: parse_client_hello(p.payload(DOMAIN))
            for p in all_strategies()["SNI Alt."]
        }
        assert payload_by_label["<omitted>"].sni is None
        assert payload_by_label["reversed"].sni == DOMAIN[::-1]
        assert payload_by_label["doubled"].sni == DOMAIN * 2

    def test_min_version_tls13_offers_only_tls13(self):
        perm = next(
            p
            for p in all_strategies()["Min Version Alt."]
            if p.label == "TLS 1.3"
        )
        parsed = parse_client_hello(perm.payload(DOMAIN))
        assert parsed.supported_versions == (0x0304,)

    def test_max_version_tls10_offers_only_tls10(self):
        perm = next(
            p
            for p in all_strategies()["Max Version Alt."]
            if p.label == "TLS 1.0"
        )
        parsed = parse_client_hello(perm.payload(DOMAIN))
        assert parsed.supported_versions == (0x0301,)

    def test_sni_tld_swaps(self):
        assert swap_tld("www.blocked.example", "net") == "www.blocked.net"
        assert swap_subdomain("www.blocked.example", "m") == "m.blocked.example"
        assert swap_subdomain("blocked.example", "m") == "m.blocked.example"


class TestNormal:
    def test_normal_http(self):
        parsed = parse_request(normal_permutation("http").payload(DOMAIN))
        assert parsed.method == "GET" and parsed.host == DOMAIN

    def test_normal_tls(self):
        parsed = parse_client_hello(normal_permutation("tls").payload(DOMAIN))
        assert parsed.sni == DOMAIN

    def test_pad_variants_count(self):
        assert len(pad_variants()) == 9
