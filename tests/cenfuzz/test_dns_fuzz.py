"""DNS fuzzing with the TTL oracle (§8 extension)."""

import pytest
from dataclasses import replace

from repro.core.cenfuzz.dns_fuzz import DNSFuzzer, dns_strategies, _mixed_case
from repro.geo.countries import build_dns_world


@pytest.fixture()
def dns_world():
    return build_dns_world()


class TestStrategies:
    def test_catalog_shape(self):
        strategies = dns_strategies()
        assert set(strategies) == {"Qname 0x20 Enc.", "Qtype Alt.", "Qname Dress."}
        assert len(strategies["Qname 0x20 Enc."]) == 4
        assert len(strategies["Qtype Alt."]) == 2

    def test_mixed_case_preserves_name(self):
        mixed = _mixed_case("www.blocked.example", 0b10101)
        assert mixed.lower() == "www.blocked.example"
        assert mixed != "www.blocked.example"

    def test_payloads_build(self):
        for permutations in dns_strategies().values():
            for permutation in permutations:
                assert permutation.build("www.blocked.example", 7)


class TestOracle:
    def test_oracle_ttl_estimated_short_of_resolver(self, dns_world):
        fuzzer = DNSFuzzer(dns_world.sim, dns_world.remote_client)
        endpoint = dns_world.endpoints[0]
        oracle = fuzzer.estimate_oracle_ttl(endpoint.ip, "www.example.com")
        # The resolver sits ~8 hops out; the oracle must stop short.
        assert 1 <= oracle < 8

    def test_unreachable_resolver_raises(self, dns_world):
        fuzzer = DNSFuzzer(dns_world.sim, dns_world.remote_client)
        with pytest.raises(Exception):
            fuzzer.estimate_oracle_ttl("203.0.113.250", "www.example.com")


class TestFuzzing:
    def test_case_insensitive_injector_blocks_0x20(self, dns_world):
        fuzzer = DNSFuzzer(dns_world.sim, dns_world.remote_client)
        endpoint = dns_world.endpoints[0]
        report = fuzzer.run_endpoint(endpoint.ip, dns_world.test_domains[0])
        assert report.normal_injected
        ok, evaluated = report.success_by_strategy()["Qname 0x20 Enc."]
        assert evaluated == 4 and ok == 0  # engine matches case-insensitively

    def test_qtype_alternation_evades_a_only_matcher(self, dns_world):
        fuzzer = DNSFuzzer(dns_world.sim, dns_world.remote_client)
        endpoint = dns_world.endpoints[0]
        report = fuzzer.run_endpoint(endpoint.ip, dns_world.test_domains[0])
        ok, evaluated = report.success_by_strategy()["Qtype Alt."]
        assert evaluated == 2 and ok == 2  # injectors only watch A queries

    def test_case_sensitive_injector_evaded_by_0x20(self, dns_world):
        device = next(
            d for d in dns_world.devices
            if d.name == dns_world.notes["onpath_injector"]
        )
        device.quirks = replace(device.quirks, dns_case_sensitive=True)
        fuzzer = DNSFuzzer(dns_world.sim, dns_world.remote_client)
        endpoint = dns_world.endpoints[0]
        report = fuzzer.run_endpoint(endpoint.ip, dns_world.test_domains[0])
        ok, evaluated = report.success_by_strategy()["Qname 0x20 Enc."]
        assert ok == evaluated == 4
        # And the resolver still resolves mixed-case names: full
        # circumvention, the 0x20 story.
        for result in report.results:
            if result.strategy == "Qname 0x20 Enc.":
                assert result.circumvented

    def test_clean_path_reports_nothing_to_fuzz(self, dns_world):
        fuzzer = DNSFuzzer(dns_world.sim, dns_world.remote_client)
        endpoint = dns_world.endpoints[0]
        report = fuzzer.run_endpoint(endpoint.ip, "www.clean.example")
        assert not report.normal_injected
        assert report.results == []

    def test_trailing_dot_behaviour(self, dns_world):
        # Rule matching strips trailing dots -> still blocked.
        fuzzer = DNSFuzzer(dns_world.sim, dns_world.remote_client)
        endpoint = dns_world.endpoints[0]
        report = fuzzer.run_endpoint(endpoint.ip, dns_world.test_domains[0])
        by_label = {r.label: r for r in report.results}
        assert not by_label["trailing-dot"].successful
        # A prepended label still matches the suffix rule.
        assert not by_label["prepended-label"].successful
