"""Persistence round-trips: measurements to JSON(L) and back."""

import json

import pytest

from repro.persist import (
    PersistError,
    UnitCache,
    fuzz_report_from_dict,
    fuzz_report_to_dict,
    load_campaign,
    probe_report_from_dict,
    probe_report_to_dict,
    save_campaign,
    save_service_run,
    trace_result_from_dict,
    trace_result_to_dict,
    unit_cache_key,
)


@pytest.fixture(scope="module")
def az_campaign():
    from repro.experiments.campaign import CampaignConfig, run_campaign
    from repro.geo.countries import build_az_world

    return run_campaign(build_az_world(), CampaignConfig(repetitions=2))


class TestTraceRoundTrip:
    def test_blocked_result_round_trips(self, az_campaign):
        original = az_campaign.blocked_remote()[0]
        restored = trace_result_from_dict(trace_result_to_dict(original))
        assert restored.endpoint_ip == original.endpoint_ip
        assert restored.blocking_type == original.blocking_type
        assert restored.blocking_hop.ip == original.blocking_hop.ip
        assert restored.blocking_hop.asn == original.blocking_hop.asn
        assert restored.location_class == original.location_class
        assert restored.in_path == original.in_path
        assert restored.control_hops == original.control_hops

    def test_quote_delta_round_trips(self, az_campaign):
        original = next(
            r for r in az_campaign.blocked_remote() if r.quote_delta is not None
        )
        restored = trace_result_from_dict(trace_result_to_dict(original))
        assert restored.quote_delta.tos_changed == original.quote_delta.tos_changed
        assert restored.quote_delta.follows_rfc792 == original.quote_delta.follows_rfc792

    def test_serialization_is_json_safe(self, az_campaign):
        for result in az_campaign.remote_results[:20]:
            json.dumps(trace_result_to_dict(result))


class TestFuzzRoundTrip:
    def test_report_round_trips(self, az_campaign):
        original = az_campaign.fuzz_reports[0]
        restored = fuzz_report_from_dict(fuzz_report_to_dict(original))
        assert restored.endpoint_ip == original.endpoint_ip
        assert restored.normal_blocked == original.normal_blocked
        assert len(restored.results) == len(original.results)
        assert restored.success_by_strategy() == original.success_by_strategy()


class TestProbeRoundTrip:
    def test_report_round_trips(self, az_campaign):
        original = next(iter(az_campaign.probe_reports.values()))
        restored = probe_report_from_dict(probe_report_to_dict(original))
        assert restored.ip == original.ip
        assert restored.open_ports == original.open_ports
        assert restored.vendor == original.vendor


class TestCampaignSaveLoad:
    def test_save_and_load(self, az_campaign, tmp_path):
        counts = save_campaign(az_campaign, tmp_path / "az")
        assert counts["traces"] == len(az_campaign.remote_results) + len(
            az_campaign.in_country_results
        )
        loaded = load_campaign(tmp_path / "az")
        assert loaded.meta["country"] == "AZ"
        assert len(loaded.remote_results) == len(az_campaign.remote_results)
        assert len(loaded.in_country_results) == len(
            az_campaign.in_country_results
        )
        assert len(loaded.blocked_remote()) == len(az_campaign.blocked_remote())
        assert set(loaded.probe_reports) == set(az_campaign.probe_reports)

    def test_loaded_data_feeds_feature_extraction(self, az_campaign, tmp_path):
        from repro.analysis.features import extract_features

        save_campaign(az_campaign, tmp_path / "az2")
        loaded = load_campaign(tmp_path / "az2")
        by_endpoint = {}
        for result in loaded.blocked_remote():
            by_endpoint.setdefault(result.endpoint_ip, []).append(result)
        endpoint_ip, traces = next(iter(by_endpoint.items()))
        features = extract_features(endpoint_ip, traces)
        assert "CensorResponse" in features.values
        import math

        assert not math.isnan(features.values["CensorResponse"])

    def test_meta_contents(self, az_campaign, tmp_path):
        save_campaign(az_campaign, tmp_path / "az3")
        meta = json.loads((tmp_path / "az3" / "meta.json").read_text())
        assert meta["endpoints"] == 29
        assert len(meta["test_domains"]) == 5
        # Telemetry was off for this campaign: format v3 still records
        # that, and writes no report file.
        assert meta["version"] == 3
        assert meta["has_report"] is False
        assert not (tmp_path / "az3" / "report.json").exists()
        # v3 provenance: enough to rebuild the world that produced this
        # directory (seed/scale arrive via world.spec).
        assert meta["kind"] == "campaign"
        # This fixture's world was hand-built (no WorldSpec): provenance
        # degrades to what the campaign itself knows.
        provenance = meta["provenance"]
        assert provenance["country"] == "AZ"
        assert provenance["seed"] is None
        assert provenance["fault_plan"] is None
        assert provenance["drift_plan"] is None
        assert provenance["epoch"] == 0
        # Environment facts (how it ran, not what it measured).
        assert meta["environment"] == {"workers": None}

    def test_spec_built_world_records_full_provenance(self, tmp_path):
        from repro.experiments.campaign import CampaignConfig, run_campaign
        from repro.geo.countries import build_world

        world = build_world("KZ", seed=11, scale=0.35)
        campaign = run_campaign(
            world,
            CampaignConfig(repetitions=2, max_endpoints=2,
                           fuzz_max_endpoints=1),
        )
        save_campaign(campaign, tmp_path / "kz")
        meta = json.loads((tmp_path / "kz" / "meta.json").read_text())
        assert meta["provenance"] == {
            "country": "KZ",
            "seed": 11,
            "scale": 0.35,
            "fault_plan": None,
            "drift_plan": None,
            "epoch": 0,
        }


class TestRunReportPersistence:
    @pytest.fixture(scope="class")
    def metered_campaign(self):
        from repro.experiments.campaign import CampaignConfig, run_campaign
        from repro.geo.countries import build_az_world
        from repro.telemetry import Telemetry

        return run_campaign(
            build_az_world(),
            CampaignConfig(repetitions=2, max_endpoints=4, fuzz_max_endpoints=2),
            telemetry=Telemetry(),
        )

    def test_report_round_trips(self, metered_campaign, tmp_path):
        counts = save_campaign(metered_campaign, tmp_path / "m")
        assert counts["report"] == 1
        meta = json.loads((tmp_path / "m" / "meta.json").read_text())
        assert meta["has_report"] is True
        loaded = load_campaign(tmp_path / "m")
        assert loaded.run_report is not None
        assert (
            loaded.run_report.identity_json()
            == metered_campaign.run_report.identity_json()
        )
        assert loaded.run_report.wall == metered_campaign.run_report.wall

    def test_old_format_directory_still_loads(self, az_campaign, tmp_path):
        # A version-1 directory: no report.json, no has_report key.
        save_campaign(az_campaign, tmp_path / "old")
        meta_path = tmp_path / "old" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 1
        del meta["has_report"]
        meta_path.write_text(json.dumps(meta, indent=2))
        loaded = load_campaign(tmp_path / "old")
        assert loaded.meta["version"] == 1
        assert loaded.run_report is None
        assert len(loaded.remote_results) == len(az_campaign.remote_results)


class TestPersistErrors:
    """The bugfix sweep: every malformed-directory path raises one typed
    PersistError naming the offending file, never a raw traceback."""

    def test_missing_directory(self, tmp_path):
        with pytest.raises(PersistError, match="meta.json"):
            load_campaign(tmp_path / "nope")

    def test_corrupt_meta(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        (run / "meta.json").write_text('{"version": 3')  # truncated write
        with pytest.raises(PersistError, match="corrupt campaign meta"):
            load_campaign(run)

    def test_non_object_meta(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        (run / "meta.json").write_text('[1, 2]')
        with pytest.raises(PersistError, match="expected a JSON object"):
            load_campaign(run)

    def test_corrupt_trace_line_names_path_and_line(
        self, az_campaign, tmp_path
    ):
        save_campaign(az_campaign, tmp_path / "run")
        traces = tmp_path / "run" / "traces.jsonl"
        lines = traces.read_text().splitlines()
        lines[2] = lines[2][:-5]  # truncate record 3
        traces.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistError, match=r"line 3"):
            load_campaign(tmp_path / "run")

    def test_unknown_unit_kind_is_typed_error(self):
        # The kind tag is read back from stored fact payloads, so a
        # corrupt or hand-edited store must report, not traceback.
        from repro.persist import unit_result_from_dict

        with pytest.raises(PersistError, match="unknown work-unit kind"):
            unit_result_from_dict("banner", {})

    def test_service_run_directory_rejected(self, tmp_path):
        from repro.telemetry import RunReport

        save_service_run(RunReport(), [{"payload": 1}], tmp_path / "svc")
        with pytest.raises(PersistError, match="service-run"):
            load_campaign(tmp_path / "svc")

    def test_service_run_meta_is_kind_tagged(self, tmp_path):
        from repro.telemetry import RunReport

        save_service_run(RunReport(), [{"payload": 1}], tmp_path / "svc")
        meta = json.loads((tmp_path / "svc" / "meta.json").read_text())
        assert meta["kind"] == "service-run"
        assert meta["version"] == 3
        assert meta["counts"]["results"] == 1


class TestVantageStrictness:
    """A typo'd vantage must never silently land in the remote bucket."""

    def test_unknown_vantage_rejected(self, az_campaign, tmp_path):
        save_campaign(az_campaign, tmp_path / "run")
        traces = tmp_path / "run" / "traces.jsonl"
        lines = traces.read_text().splitlines()
        record = json.loads(lines[0])
        record["vantage"] = "remotee"
        lines[0] = json.dumps(record)
        traces.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistError, match="unknown vantage 'remotee'"):
            load_campaign(tmp_path / "run")

    def test_missing_vantage_rejected(self, az_campaign, tmp_path):
        save_campaign(az_campaign, tmp_path / "run")
        traces = tmp_path / "run" / "traces.jsonl"
        lines = traces.read_text().splitlines()
        record = json.loads(lines[1])
        del record["vantage"]
        lines[1] = json.dumps(record)
        traces.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistError, match=r"record 2 .* no vantage"):
            load_campaign(tmp_path / "run")

    def test_round_trip_preserves_vantage_split(self, az_campaign, tmp_path):
        """Regression for the sweep: the split must survive a save/load
        cycle exactly, not merely sum to the right total."""
        save_campaign(az_campaign, tmp_path / "run")
        loaded = load_campaign(tmp_path / "run")
        assert [r.endpoint_ip for r in loaded.remote_results] == [
            r.endpoint_ip for r in az_campaign.remote_results
        ]
        assert [r.endpoint_ip for r in loaded.in_country_results] == [
            r.endpoint_ip for r in az_campaign.in_country_results
        ]


class TestUnitCache:
    def entry(self, n=0):
        key = unit_cache_key(["AZ", 7, 0.35, None], ["trace", 2, f"u{n}"])
        return key, {"endpoint_ip": f"10.0.0.{n}", "blocked": True}

    def test_persists_across_instances(self, tmp_path):
        cache = UnitCache(tmp_path)
        key, payload = self.entry()
        cache.put(key, "trace", payload)
        reloaded = UnitCache(tmp_path)
        assert len(reloaded) == 1
        assert key in reloaded
        assert reloaded.get(key) == {"kind": "trace", "payload": payload}

    def test_put_is_idempotent(self, tmp_path):
        cache = UnitCache(tmp_path)
        key, payload = self.entry()
        cache.put(key, "trace", payload)
        cache.put(key, "trace", payload)
        assert len((tmp_path / UnitCache.FILENAME).read_text().splitlines()) == 1

    def test_torn_final_line_tolerated(self, tmp_path):
        from repro.telemetry import Telemetry

        cache = UnitCache(tmp_path)
        for n in range(3):
            key, payload = self.entry(n)
            cache.put(key, "trace", payload)
        path = tmp_path / UnitCache.FILENAME
        path.write_text(path.read_text()[:-20])  # crash mid-append
        telemetry = Telemetry()
        reloaded = UnitCache(tmp_path, telemetry=telemetry)
        assert len(reloaded) == 2
        assert telemetry.counters["store.unit_cache_torn_tail"] == 1

    def test_mid_file_corruption_rejected(self, tmp_path):
        cache = UnitCache(tmp_path)
        for n in range(3):
            key, payload = self.entry(n)
            cache.put(key, "trace", payload)
        path = tmp_path / UnitCache.FILENAME
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-10]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistError, match="line 1"):
            UnitCache(tmp_path)

    def test_hit_and_miss_counters(self, tmp_path):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        cache = UnitCache(tmp_path, telemetry=telemetry)
        key, payload = self.entry()
        assert cache.get(key) is None
        cache.put(key, "trace", payload)
        assert cache.get(key) is not None
        assert telemetry.counters["store.unit_cache_misses"] == 1
        assert telemetry.counters["store.unit_cache_hits"] == 1
        assert telemetry.counters["store.unit_cache_writes"] == 1

    def test_key_depends_on_each_component(self):
        base = unit_cache_key(["AZ", 7, 0.35, None], ["trace", 2, "u"])
        assert base != unit_cache_key(["AZ", 8, 0.35, None], ["trace", 2, "u"])
        assert base != unit_cache_key(["AZ", 7, 0.35, None], ["trace", 3, "u"])
        assert base != unit_cache_key(
            ["AZ", 7, 0.35, None], ["trace", 2, "u"],
            [{"kind": "firmware", "target": "dev1", "epoch": 1}],
        )
        # Deterministic across processes (no randomized hashing).
        assert base == unit_cache_key(["AZ", 7, 0.35, None], ["trace", 2, "u"])


class TestFieldsDrivenTraceRoundTrip:
    """Walks dataclasses.fields(CenTraceResult) so a newly added field
    that the serializer ignores fails here by name, not by luck."""

    # Sweep transcripts are summarized, not archived — read straight
    # from the declared exclusion table so this test and the RP701
    # static check can never disagree about what is exempt.
    from repro.persist import SERIALIZER_EXCLUDED_FIELDS

    EXCLUDED = set(SERIALIZER_EXCLUDED_FIELDS["trace_result"])

    def variant_result(self):
        import dataclasses

        from repro.core.centrace.results import CenTraceResult, HopInfo
        from repro.netmodel.icmp import QuoteDelta

        variants = {
            "endpoint_ip": "10.9.9.9",
            "endpoint_asn": 64501,
            "test_domain": "variant.example",
            "protocol": "https",
            "blocked": True,
            "valid": False,
            "degraded": True,
            "blocking_type": "RST",
            "terminating_ttl": 9,
            "endpoint_distance": 13,
            "blocking_hop": HopInfo(
                ttl=5, ip="10.0.0.5", asn=64500,
                as_name="VariantNet", country="AZ",
            ),
            "location_class": "in-path",
            "in_path": True,
            "hops_from_endpoint": 3,
            "ttl_copy_detected": True,
            "corrected_device_distance": 4,
            "injected_ip_id": 54321,
            "injected_ip_tos": 8,
            "injected_ip_flags": 2,
            "injected_ttl": 61,
            "injected_initial_ttl": 64,
            "injected_tcp_flags": 0x14,
            "injected_tcp_window": 512,
            "injected_tcp_options": (2, 4, 8),
            "blockpage_fingerprint": "generic_region_block",
            "quote_delta": QuoteDelta(
                tos_changed=True, ip_flags_changed=True, ttl_delta=2,
                identification_changed=True, length_changed=True,
                transport_bytes_quoted=28, follows_rfc792=True,
                payload_modified=True,
            ),
            "control_hops": {3: {"10.0.0.3": 2}},
        }
        names = {
            f.name for f in dataclasses.fields(CenTraceResult)
        } - self.EXCLUDED
        missing = names - set(variants)
        assert not missing, (
            f"add round-trip variants for new CenTraceResult "
            f"field(s): {sorted(missing)}"
        )
        return CenTraceResult(**variants), names

    def test_every_field_round_trips(self):
        original, names = self.variant_result()
        restored = trace_result_from_dict(trace_result_to_dict(original))
        for name in sorted(names):
            assert getattr(restored, name) == getattr(original, name), name


class TestLocalizationRoundTrip:
    """Fields-driven round-trips for the localization serializers: a
    new field either round-trips or fails here by name."""

    def variant_evidence(self):
        import dataclasses

        from repro.localize import PathEvidence

        variants = {
            "client_ip": "10.9.0.1",
            "endpoint_ip": "10.0.1.1",
            "domain": "variant.example",
            "protocol": "https",
            "sport": 40123,
            "dport": 443,
            "outcome": "RST",
            "blocked": True,
            "links": (("c", "i"), ("i", "a")),
            "epoch": 4,
            "source": "centrace",
            "terminating_ttl": 3,
            "blocking_hop_ip": "10.0.0.3",
            "endpoint_distance": 7,
        }
        names = {f.name for f in dataclasses.fields(PathEvidence)}
        missing = names - set(variants)
        assert not missing, (
            f"add round-trip variants for new PathEvidence "
            f"field(s): {sorted(missing)}"
        )
        return PathEvidence(**variants), names

    def variant_verdict(self):
        import dataclasses

        from repro.localize import LocalizationVerdict

        variants = {
            "method": "tomography",
            "endpoint_ip": "10.0.1.1",
            "domain": "variant.example",
            "candidate_links": (("i", "a"), ("a", "j")),
            "hop_low": 1,
            "hop_high": 2,
            "confidence": 0.75,
            "evidence_count": 24,
            "detail": "blocked=12/24 epochs=5",
        }
        names = {f.name for f in dataclasses.fields(LocalizationVerdict)}
        missing = names - set(variants)
        assert not missing, (
            f"add round-trip variants for new LocalizationVerdict "
            f"field(s): {sorted(missing)}"
        )
        return LocalizationVerdict(**variants), names

    def test_every_evidence_field_round_trips(self):
        from repro.persist import path_evidence_from_dict, path_evidence_to_dict

        original, names = self.variant_evidence()
        data = json.loads(json.dumps(path_evidence_to_dict(original)))
        restored = path_evidence_from_dict(data)
        for name in sorted(names):
            assert getattr(restored, name) == getattr(original, name), name

    def test_every_verdict_field_round_trips(self):
        from repro.persist import (
            localization_verdict_from_dict,
            localization_verdict_to_dict,
        )

        original, names = self.variant_verdict()
        data = json.loads(json.dumps(localization_verdict_to_dict(original)))
        restored = localization_verdict_from_dict(data)
        for name in sorted(names):
            assert getattr(restored, name) == getattr(original, name), name

    def test_links_restore_as_tuples(self):
        from repro.persist import path_evidence_from_dict, path_evidence_to_dict

        original, _ = self.variant_evidence()
        restored = path_evidence_from_dict(
            json.loads(json.dumps(path_evidence_to_dict(original)))
        )
        assert restored.links == original.links
        assert isinstance(restored.links, tuple)
        assert all(isinstance(link, tuple) for link in restored.links)
        assert restored.link_set() == original.link_set()


class TestSaveLoadLocalization:
    def run_dir(self, tmp_path):
        from repro.persist import save_localization

        evidence, _ = TestLocalizationRoundTrip().variant_evidence()
        verdict, _ = TestLocalizationRoundTrip().variant_verdict()
        xval = {"methods": {"tomography": {"accuracy": 1.0}}}
        counts = save_localization(
            [verdict], [evidence], tmp_path / "loc", xval=xval
        )
        return tmp_path / "loc", counts

    def test_save_then_load(self, tmp_path):
        from repro.persist import load_localization

        directory, counts = self.run_dir(tmp_path)
        assert counts == {"verdicts": 1, "evidence": 1, "xval": 1}
        run = load_localization(directory)
        assert run.meta["kind"] == "localization"
        assert len(run.verdicts) == 1 and len(run.evidence) == 1
        assert run.by_method()["tomography"][0].hop_low == 1
        assert run.xval["methods"]["tomography"]["accuracy"] == 1.0

    def test_missing_directory_raises_persist_error(self, tmp_path):
        from repro.persist import load_localization

        with pytest.raises(PersistError, match="meta"):
            load_localization(tmp_path / "nope")

    def test_wrong_kind_rejected(self, tmp_path):
        from repro.persist import load_localization

        directory = tmp_path / "svc"
        directory.mkdir()
        (directory / "meta.json").write_text(
            json.dumps({"version": 3, "kind": "service-run"})
        )
        with pytest.raises(PersistError, match="service-run"):
            load_localization(directory)

    def test_corrupt_verdicts_raise_persist_error(self, tmp_path):
        from repro.persist import load_localization

        directory, _ = self.run_dir(tmp_path)
        path = directory / "verdicts.jsonl"
        path.write_text(path.read_text()[:-20])
        with pytest.raises(PersistError, match="corrupt"):
            load_localization(directory)
