"""Persistence round-trips: measurements to JSON(L) and back."""

import json

import pytest

from repro.persist import (
    fuzz_report_from_dict,
    fuzz_report_to_dict,
    load_campaign,
    probe_report_from_dict,
    probe_report_to_dict,
    save_campaign,
    trace_result_from_dict,
    trace_result_to_dict,
)


@pytest.fixture(scope="module")
def az_campaign():
    from repro.experiments.campaign import CampaignConfig, run_campaign
    from repro.geo.countries import build_az_world

    return run_campaign(build_az_world(), CampaignConfig(repetitions=2))


class TestTraceRoundTrip:
    def test_blocked_result_round_trips(self, az_campaign):
        original = az_campaign.blocked_remote()[0]
        restored = trace_result_from_dict(trace_result_to_dict(original))
        assert restored.endpoint_ip == original.endpoint_ip
        assert restored.blocking_type == original.blocking_type
        assert restored.blocking_hop.ip == original.blocking_hop.ip
        assert restored.blocking_hop.asn == original.blocking_hop.asn
        assert restored.location_class == original.location_class
        assert restored.in_path == original.in_path
        assert restored.control_hops == original.control_hops

    def test_quote_delta_round_trips(self, az_campaign):
        original = next(
            r for r in az_campaign.blocked_remote() if r.quote_delta is not None
        )
        restored = trace_result_from_dict(trace_result_to_dict(original))
        assert restored.quote_delta.tos_changed == original.quote_delta.tos_changed
        assert restored.quote_delta.follows_rfc792 == original.quote_delta.follows_rfc792

    def test_serialization_is_json_safe(self, az_campaign):
        for result in az_campaign.remote_results[:20]:
            json.dumps(trace_result_to_dict(result))


class TestFuzzRoundTrip:
    def test_report_round_trips(self, az_campaign):
        original = az_campaign.fuzz_reports[0]
        restored = fuzz_report_from_dict(fuzz_report_to_dict(original))
        assert restored.endpoint_ip == original.endpoint_ip
        assert restored.normal_blocked == original.normal_blocked
        assert len(restored.results) == len(original.results)
        assert restored.success_by_strategy() == original.success_by_strategy()


class TestProbeRoundTrip:
    def test_report_round_trips(self, az_campaign):
        original = next(iter(az_campaign.probe_reports.values()))
        restored = probe_report_from_dict(probe_report_to_dict(original))
        assert restored.ip == original.ip
        assert restored.open_ports == original.open_ports
        assert restored.vendor == original.vendor


class TestCampaignSaveLoad:
    def test_save_and_load(self, az_campaign, tmp_path):
        counts = save_campaign(az_campaign, tmp_path / "az")
        assert counts["traces"] == len(az_campaign.remote_results) + len(
            az_campaign.in_country_results
        )
        loaded = load_campaign(tmp_path / "az")
        assert loaded.meta["country"] == "AZ"
        assert len(loaded.remote_results) == len(az_campaign.remote_results)
        assert len(loaded.in_country_results) == len(
            az_campaign.in_country_results
        )
        assert len(loaded.blocked_remote()) == len(az_campaign.blocked_remote())
        assert set(loaded.probe_reports) == set(az_campaign.probe_reports)

    def test_loaded_data_feeds_feature_extraction(self, az_campaign, tmp_path):
        from repro.analysis.features import extract_features

        save_campaign(az_campaign, tmp_path / "az2")
        loaded = load_campaign(tmp_path / "az2")
        by_endpoint = {}
        for result in loaded.blocked_remote():
            by_endpoint.setdefault(result.endpoint_ip, []).append(result)
        endpoint_ip, traces = next(iter(by_endpoint.items()))
        features = extract_features(endpoint_ip, traces)
        assert "CensorResponse" in features.values
        import math

        assert not math.isnan(features.values["CensorResponse"])

    def test_meta_contents(self, az_campaign, tmp_path):
        save_campaign(az_campaign, tmp_path / "az3")
        meta = json.loads((tmp_path / "az3" / "meta.json").read_text())
        assert meta["endpoints"] == 29
        assert len(meta["test_domains"]) == 5
