"""Persistence round-trips: measurements to JSON(L) and back."""

import json

import pytest

from repro.persist import (
    fuzz_report_from_dict,
    fuzz_report_to_dict,
    load_campaign,
    probe_report_from_dict,
    probe_report_to_dict,
    save_campaign,
    trace_result_from_dict,
    trace_result_to_dict,
)


@pytest.fixture(scope="module")
def az_campaign():
    from repro.experiments.campaign import CampaignConfig, run_campaign
    from repro.geo.countries import build_az_world

    return run_campaign(build_az_world(), CampaignConfig(repetitions=2))


class TestTraceRoundTrip:
    def test_blocked_result_round_trips(self, az_campaign):
        original = az_campaign.blocked_remote()[0]
        restored = trace_result_from_dict(trace_result_to_dict(original))
        assert restored.endpoint_ip == original.endpoint_ip
        assert restored.blocking_type == original.blocking_type
        assert restored.blocking_hop.ip == original.blocking_hop.ip
        assert restored.blocking_hop.asn == original.blocking_hop.asn
        assert restored.location_class == original.location_class
        assert restored.in_path == original.in_path
        assert restored.control_hops == original.control_hops

    def test_quote_delta_round_trips(self, az_campaign):
        original = next(
            r for r in az_campaign.blocked_remote() if r.quote_delta is not None
        )
        restored = trace_result_from_dict(trace_result_to_dict(original))
        assert restored.quote_delta.tos_changed == original.quote_delta.tos_changed
        assert restored.quote_delta.follows_rfc792 == original.quote_delta.follows_rfc792

    def test_serialization_is_json_safe(self, az_campaign):
        for result in az_campaign.remote_results[:20]:
            json.dumps(trace_result_to_dict(result))


class TestFuzzRoundTrip:
    def test_report_round_trips(self, az_campaign):
        original = az_campaign.fuzz_reports[0]
        restored = fuzz_report_from_dict(fuzz_report_to_dict(original))
        assert restored.endpoint_ip == original.endpoint_ip
        assert restored.normal_blocked == original.normal_blocked
        assert len(restored.results) == len(original.results)
        assert restored.success_by_strategy() == original.success_by_strategy()


class TestProbeRoundTrip:
    def test_report_round_trips(self, az_campaign):
        original = next(iter(az_campaign.probe_reports.values()))
        restored = probe_report_from_dict(probe_report_to_dict(original))
        assert restored.ip == original.ip
        assert restored.open_ports == original.open_ports
        assert restored.vendor == original.vendor


class TestCampaignSaveLoad:
    def test_save_and_load(self, az_campaign, tmp_path):
        counts = save_campaign(az_campaign, tmp_path / "az")
        assert counts["traces"] == len(az_campaign.remote_results) + len(
            az_campaign.in_country_results
        )
        loaded = load_campaign(tmp_path / "az")
        assert loaded.meta["country"] == "AZ"
        assert len(loaded.remote_results) == len(az_campaign.remote_results)
        assert len(loaded.in_country_results) == len(
            az_campaign.in_country_results
        )
        assert len(loaded.blocked_remote()) == len(az_campaign.blocked_remote())
        assert set(loaded.probe_reports) == set(az_campaign.probe_reports)

    def test_loaded_data_feeds_feature_extraction(self, az_campaign, tmp_path):
        from repro.analysis.features import extract_features

        save_campaign(az_campaign, tmp_path / "az2")
        loaded = load_campaign(tmp_path / "az2")
        by_endpoint = {}
        for result in loaded.blocked_remote():
            by_endpoint.setdefault(result.endpoint_ip, []).append(result)
        endpoint_ip, traces = next(iter(by_endpoint.items()))
        features = extract_features(endpoint_ip, traces)
        assert "CensorResponse" in features.values
        import math

        assert not math.isnan(features.values["CensorResponse"])

    def test_meta_contents(self, az_campaign, tmp_path):
        save_campaign(az_campaign, tmp_path / "az3")
        meta = json.loads((tmp_path / "az3" / "meta.json").read_text())
        assert meta["endpoints"] == 29
        assert len(meta["test_domains"]) == 5
        # Telemetry was off for this campaign: format v2 still records
        # that, and writes no report file.
        assert meta["version"] == 2
        assert meta["has_report"] is False
        assert not (tmp_path / "az3" / "report.json").exists()


class TestRunReportPersistence:
    @pytest.fixture(scope="class")
    def metered_campaign(self):
        from repro.experiments.campaign import CampaignConfig, run_campaign
        from repro.geo.countries import build_az_world
        from repro.telemetry import Telemetry

        return run_campaign(
            build_az_world(),
            CampaignConfig(repetitions=2, max_endpoints=4, fuzz_max_endpoints=2),
            telemetry=Telemetry(),
        )

    def test_report_round_trips(self, metered_campaign, tmp_path):
        counts = save_campaign(metered_campaign, tmp_path / "m")
        assert counts["report"] == 1
        meta = json.loads((tmp_path / "m" / "meta.json").read_text())
        assert meta["has_report"] is True
        loaded = load_campaign(tmp_path / "m")
        assert loaded.run_report is not None
        assert (
            loaded.run_report.identity_json()
            == metered_campaign.run_report.identity_json()
        )
        assert loaded.run_report.wall == metered_campaign.run_report.wall

    def test_old_format_directory_still_loads(self, az_campaign, tmp_path):
        # A version-1 directory: no report.json, no has_report key.
        save_campaign(az_campaign, tmp_path / "old")
        meta_path = tmp_path / "old" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["version"] = 1
        del meta["has_report"]
        meta_path.write_text(json.dumps(meta, indent=2))
        loaded = load_campaign(tmp_path / "old")
        assert loaded.meta["version"] == 1
        assert loaded.run_report is None
        assert len(loaded.remote_results) == len(az_campaign.remote_results)
