"""viz.py unit behaviour on hand-built results."""

import networkx as nx
import pytest

from repro import viz
from repro.core.centrace.results import CenTraceResult, HopInfo


def _result(blocked=True, hop_ttl=2, hops=("10.0.0.1", "10.0.0.2", "10.0.0.3")):
    result = CenTraceResult(
        endpoint_ip="10.0.9.9",
        endpoint_asn=9,
        test_domain="x.example",
        protocol="http",
        blocked=blocked,
        blocking_type="TIMEOUT" if blocked else "NORMAL",
        endpoint_distance=len(hops) + 1,
    )
    result.control_hops = {
        i + 1: {ip: 3} for i, ip in enumerate(hops)
    }
    if blocked:
        result.blocking_hop = HopInfo(ttl=hop_ttl, ip=hops[hop_ttl - 1])
    return result


class TestBuildGraph:
    def test_nodes_and_edges(self):
        graph = viz.build_path_graph([_result()], client_label="c")
        assert "c" in graph
        assert graph.has_edge("c", "10.0.0.1")
        assert graph.has_edge("10.0.0.1", "10.0.0.2")

    def test_blocked_edge_marked(self):
        graph = viz.build_path_graph([_result(hop_ttl=2)])
        assert graph["10.0.0.1"]["10.0.0.2"]["blocked"] == 1

    def test_unblocked_traces_mark_nothing(self):
        graph = viz.build_path_graph([_result(blocked=False)])
        assert all(not d["blocked"] for _, _, d in graph.edges(data=True))

    def test_trace_counts_accumulate(self):
        graph = viz.build_path_graph([_result(), _result()])
        assert graph["client"]["10.0.0.1"]["traces"] == 2

    def test_invalid_results_skipped(self):
        bad = _result()
        bad.valid = False
        graph = viz.build_path_graph([bad])
        assert graph.number_of_edges() == 0

    def test_silent_hops_get_placeholder_nodes(self):
        result = _result()
        result.control_hops[2] = {"": 3}  # silence at hop 2
        graph = viz.build_path_graph([result])
        placeholders = [n for n in graph if n.startswith("*ttl")]
        assert placeholders


class TestRenderers:
    def test_ascii_marks_blocked_links(self):
        graph = viz.build_path_graph([_result()], client_label="c")
        text = viz.render_ascii(graph, root="c")
        assert "[X]-> " in text

    def test_dot_is_parseable_shape(self):
        graph = viz.build_path_graph([_result()], client_label="c")
        dot = viz.render_dot(graph)
        assert dot.count("{") == dot.count("}") == 1
        assert '"c" ->' in dot or '"c" -' in dot

    def test_blocking_link_summary_orders_by_count(self):
        results = [_result(hop_ttl=2), _result(hop_ttl=2), _result(hop_ttl=3)]
        graph = viz.build_path_graph(results)
        summary = viz.blocking_link_summary(graph)
        assert summary[0][2] >= summary[-1][2]
