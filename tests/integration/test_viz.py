"""Path-graph rendering from real CenTrace results."""

import pytest

from repro import viz
from repro.core.centrace import CenTrace, CenTraceConfig
from repro.geo.countries import build_az_world


@pytest.fixture(scope="module")
def az_results():
    world = build_az_world()
    tracer = CenTrace(
        world.sim, world.remote_client, asdb=world.asdb,
        config=CenTraceConfig(repetitions=2),
    )
    results = []
    for endpoint in world.endpoints[:4]:
        results.append(tracer.measure(endpoint.ip, world.test_domains[0], "http"))
        results.append(tracer.measure(endpoint.ip, world.test_domains[4], "http"))
    return world, results


class TestPathGraph:
    def test_graph_contains_client_and_endpoints(self, az_results):
        world, results = az_results
        graph = viz.build_path_graph(results, asdb=world.asdb, client_label="c")
        assert "c" in graph
        endpoint_nodes = [
            n for n, d in graph.nodes(data=True) if d.get("kind") == "endpoint"
        ]
        assert endpoint_nodes

    def test_blocked_links_marked(self, az_results):
        world, results = az_results
        graph = viz.build_path_graph(results, asdb=world.asdb, client_label="c")
        blocked = [
            (a, b) for a, b, d in graph.edges(data=True) if d.get("blocked")
        ]
        assert blocked

    def test_blocking_link_summary_names_delta(self, az_results):
        world, results = az_results
        graph = viz.build_path_graph(results, asdb=world.asdb, client_label="c")
        links = viz.blocking_link_summary(graph)
        assert links
        assert any("Delta Telecom" in (a + b) for a, b, _ in links)

    def test_ascii_render(self, az_results):
        world, results = az_results
        graph = viz.build_path_graph(results, asdb=world.asdb, client_label="c")
        text = viz.render_ascii(graph, root="c")
        assert "[X]-> " in text
        assert "<endpoint>" in text

    def test_dot_render(self, az_results):
        world, results = az_results
        graph = viz.build_path_graph(results, asdb=world.asdb, client_label="c")
        dot = viz.render_dot(graph)
        assert dot.startswith("digraph")
        assert "color=red" in dot
        assert dot.endswith("}")

    def test_as_annotation(self, az_results):
        world, results = az_results
        graph = viz.build_path_graph(results, asdb=world.asdb, client_label="c")
        annotated = [
            n for n, d in graph.nodes(data=True) if d.get("asn") == 29049
        ]
        assert annotated
