"""Command-line interface."""

import json

import pytest

from repro.cli import main


class TestWorlds:
    def test_text_output(self, capsys):
        assert main(["worlds"]) == 0
        out = capsys.readouterr().out
        for country in ("AZ", "BY", "KZ", "RU"):
            assert f"{country}:" in out

    def test_json_output(self, capsys):
        assert main(["worlds", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["country"] for row in rows} == {"AZ", "BY", "KZ", "RU"}


class TestCenTrace:
    def test_basic_run(self, capsys):
        code = main(
            [
                "centrace",
                "--country",
                "AZ",
                "--max-endpoints",
                "2",
                "--repetitions",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "measurements blocked" in out
        assert "Delta Telecom" in out

    def test_json_output_parses(self, capsys):
        code = main(
            [
                "centrace",
                "--country",
                "AZ",
                "--max-endpoints",
                "1",
                "--repetitions",
                "2",
                "--json",
            ]
        )
        assert code == 0
        results = json.loads(capsys.readouterr().out)
        assert results[0]["blocked"] is True
        assert results[0]["blocking_hop"]["asn"] == 29049

    def test_dns_protocol(self, capsys):
        code = main(
            [
                "centrace",
                "--country",
                "AZ",
                "--max-endpoints",
                "1",
                "--protocol",
                "dns",
                "--repetitions",
                "2",
            ]
        )
        assert code == 0  # no DNS devices in AZ: simply unblocked


class TestCenFuzz:
    def test_strategy_filter(self, capsys):
        code = main(
            [
                "cenfuzz",
                "--country",
                "KZ",
                "--strategy",
                "Get Word Alt.",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "BLOCKED" in out
        assert "Get Word Alt." in out


class TestCenProbe:
    def test_scan_all_device_ips(self, capsys):
        assert main(["cenprobe", "--country", "KZ"]) == 0
        out = capsys.readouterr().out
        assert "vendor=Cisco" in out

    def test_json(self, capsys):
        assert main(["cenprobe", "--country", "KZ", "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert any(r["vendor"] == "Fortinet" for r in reports)


class TestCampaign:
    def test_campaign_with_save(self, capsys, tmp_path):
        code = main(
            [
                "campaign",
                "--country",
                "AZ",
                "--repetitions",
                "2",
                "--scale",
                "0.3",
                "--out",
                str(tmp_path / "az"),
            ]
        )
        assert code == 0
        assert (tmp_path / "az" / "traces.jsonl").exists()
        assert (tmp_path / "az" / "meta.json").exists()
        # No --metrics -> no run report persisted.
        assert not (tmp_path / "az" / "report.json").exists()

    def test_campaign_metrics_prints_and_persists_report(
        self, capsys, tmp_path
    ):
        out_dir = tmp_path / "azm"
        code = main(
            [
                "campaign",
                "--country",
                "AZ",
                "--repetitions",
                "2",
                "--scale",
                "0.3",
                "--metrics",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Run report — AZ campaign" in out
        assert "centrace.measurements" in out
        report = json.loads((out_dir / "report.json").read_text())
        assert report["counters"]["centrace.measurements"] > 0

    def test_report_run_renders_saved_report(self, capsys, tmp_path):
        out_dir = tmp_path / "azr"
        assert (
            main(
                [
                    "campaign",
                    "--country",
                    "AZ",
                    "--repetitions",
                    "2",
                    "--scale",
                    "0.3",
                    "--metrics",
                    "--out",
                    str(out_dir),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["report", "--run", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "Run report — AZ campaign" in out
        assert "Counters" in out

    def test_report_run_missing_report_errors(self, capsys, tmp_path):
        assert main(["report", "--run", str(tmp_path)]) == 2
        assert "--metrics" in capsys.readouterr().err

    def test_report_run_missing_directory_errors(self, capsys, tmp_path):
        assert main(["report", "--run", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_report_run_format_version_1_dir(self, capsys, tmp_path):
        # A directory saved before FORMAT_VERSION 2 has a meta.json but
        # no report.json; the CLI must say so, not traceback.
        (tmp_path / "meta.json").write_text(
            json.dumps({"version": 1, "country": "AZ"})
        )
        assert main(["report", "--run", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "format-version 1" in err
        assert "Traceback" not in err

    def test_report_run_no_telemetry_dir(self, capsys, tmp_path):
        (tmp_path / "meta.json").write_text(
            json.dumps({"version": 2, "has_report": False})
        )
        assert main(["report", "--run", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "without telemetry" in err

    def test_report_registry_renders_documented_surface(self, capsys):
        assert main(["report", "--registry"]) == 0
        out = capsys.readouterr().out
        assert "Telemetry registry" in out
        assert "Counters" in out and "Spans" in out and "Events" in out
        assert "centrace.measurements" in out

    def test_report_registry_json_matches_declared_tables(self, capsys):
        from repro.telemetry_registry import COUNTERS, EVENTS, SPANS

        assert main(["report", "--registry", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counters"] == COUNTERS
        assert payload["spans"] == SPANS
        assert payload["events"] == EVENTS

    def test_drift_error_routes_to_exit_two(self, capsys, tmp_path):
        # A malformed --drift-plan spec is user input: clear message,
        # exit 2, no traceback (the RP902 contract, exercised live).
        code = main([
            "epochs", "--country", "KZ", "--epochs", "1",
            "--out", str(tmp_path / "obs"),
            "--drift-plan", "@" + str(tmp_path / "nope.json"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot read drift plan file" in err
        assert "Traceback" not in err

    def test_report_run_partially_written_report(self, capsys, tmp_path):
        # Simulate a crash mid-write: truncated JSON must degrade to a
        # clear message + exit 2, never a traceback.
        (tmp_path / "report.json").write_text('{"counters": {"a"')
        assert main(["report", "--run", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "partially written" in err
        assert "Traceback" not in err
        # Valid JSON with wrong-typed sections is equally truncated.
        (tmp_path / "report.json").write_text('{"counters": 5}')
        assert main(["report", "--run", str(tmp_path)]) == 2
        assert "partially written" in capsys.readouterr().err


class TestServe:
    def test_serve_swarm_and_report_round_trip(self, capsys, tmp_path):
        out_dir = tmp_path / "svc"
        code = main(
            [
                "serve",
                "--country",
                "AZ",
                "--seed",
                "7",
                "--scale",
                "0.35",
                "--requests",
                "60",
                "--tenants",
                "4",
                "--interleave-seed",
                "1",
                "--verify",
                "--min-hit-rate",
                "0.3",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "VERIFIED vs direct run" in out
        # The saved run round-trips through `repro report --run`.
        assert main(["report", "--run", str(out_dir)]) == 0
        rendered = capsys.readouterr().out
        assert "service.units_executed" in rendered
        results = (out_dir / "results.jsonl").read_text().splitlines()
        assert results
        for line in results:
            json.loads(line)

    def test_serve_json_output(self, capsys):
        code = main(
            [
                "serve",
                "--country",
                "AZ",
                "--seed",
                "7",
                "--scale",
                "0.35",
                "--requests",
                "40",
                "--tenants",
                "4",
                "--interleave-seed",
                "2",
                "--json",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["stats"]["units_requested"] > 0
        assert data["stats"]["unit_failures"] == 0
        assert data["stats"]["coalescing_hit_rate"] > 0

    def test_serve_min_hit_rate_failure(self, capsys):
        code = main(
            [
                "serve",
                "--country",
                "AZ",
                "--seed",
                "7",
                "--scale",
                "0.35",
                "--requests",
                "20",
                "--tenants",
                "2",
                "--min-hit-rate",
                "1.1",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().err


class TestExperiment:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "total permutations: 479" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "nope"]) == 2


class TestResidual:
    def test_kz_residual_measured(self, capsys):
        assert main(["residual", "--country", "KZ"]) == 0
        out = capsys.readouterr().out
        assert "stateful (3-tuple)" in out

    def test_json(self, capsys):
        assert main(["residual", "--country", "KZ", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["stateful"] is True
        low, high = data["duration_bounds"]
        assert low < 60 <= high


class TestEpochs:
    def _run(self, tmp_path, extra=()):
        return main([
            "epochs", "--country", "KZ", "--seed", "11", "--scale", "0.35",
            "--epochs", "2", "--repetitions", "2", "--max-endpoints", "2",
            "--fuzz-max-endpoints", "1", "--out", str(tmp_path / "obs"),
            *extra,
        ])

    def test_observatory_run_and_continuation(self, tmp_path, capsys):
        assert self._run(tmp_path) == 0
        out = capsys.readouterr().out
        assert "epoch 0:" in out and "epoch 1:" in out
        # Continuation: same out dir, no new drift -> everything reuses,
        # so --min-reuse passes; the store grows epochs 2-3.
        assert self._run(tmp_path, ("--min-reuse", "0.5")) == 0
        out = capsys.readouterr().out
        assert "epoch 2:" in out and "(100%)" in out

    def test_min_reuse_gate_fails_a_cold_run(self, tmp_path, capsys):
        # Even in-run reuse (epoch 1 hitting epoch 0's units) tops out
        # at 1/2 here; a cold observatory cannot reach 0.9.
        code = self._run(tmp_path, ("--min-reuse", "0.9"))
        assert code == 1
        assert "FAIL" in capsys.readouterr().err

    def test_json_summary_with_auto_plan(self, tmp_path, capsys):
        code = self._run(
            tmp_path, ("--drift-plan", "auto", "--drift-seed", "3", "--json")
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["epochs"] == 2
        assert [e["epoch"] for e in summary["per_epoch"]] == [0, 1]
        assert summary["per_epoch"][1]["drift_ops_applied"] == 1


class TestLocalize:
    SUBSET = "i0>a1,b1>n"

    def test_text_run_with_gate_and_save(self, tmp_path, capsys):
        code = main([
            "localize", "--placements", self.SUBSET,
            "--min-accuracy", "0.8", "--metrics",
            "--out", str(tmp_path / "loc"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tomography" in out and "accuracy=" in out
        assert "localize.probes" in out
        assert (tmp_path / "loc" / "verdicts.jsonl").exists()
        from repro.persist import load_localization

        run = load_localization(tmp_path / "loc")
        assert run.xval is not None
        assert "tomography" in run.by_method()

    def test_json_output_parses(self, capsys):
        code = main([
            "localize", "--placements", self.SUBSET, "--no-ttl", "--json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["methods"]["tomography"]["accuracy"] == 1.0
        assert "ttl" not in report["methods"]

    def test_impossible_accuracy_gate_fails(self, capsys):
        # The inconsistency/TTL methods never reach 101%; neither can
        # tomography — the gate must trip, not be clamped.
        code = main([
            "localize", "--placements", self.SUBSET, "--no-ttl",
            "--min-accuracy", "1.01",
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().err

    def test_unknown_placement_rejected(self, capsys):
        code = main(["localize", "--placements", "nope"])
        assert code == 2
        assert "unknown placement" in capsys.readouterr().err
