"""The example scripts run end to end (quick subset)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent.parent / "examples"


def _run(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestExamples:
    def test_quickstart(self):
        proc = _run("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "blocking hop" in proc.stdout
        assert "JSC Kazakhtelecom" in proc.stdout

    def test_dns_injection(self):
        proc = _run("dns_injection.py")
        assert proc.returncode == 0, proc.stderr
        assert "INJECTED" in proc.stdout
        assert "on-path" in proc.stdout and "in-path" in proc.stdout

    def test_evade_and_circumvent(self):
        proc = _run("evade_and_circumvent.py")
        assert proc.returncode == 0, proc.stderr
        assert "circumvent 9" in proc.stdout  # pokerstars padding
