"""Cross-module integration: full worlds, full tool chains."""

import pytest

from repro.core.cenprobe import CenProbe
from repro.core.centrace import CenTrace, CenTraceConfig, PROTO_TLS
from repro.geo.countries import build_az_world, build_kz_world


class TestAZEndToEnd:
    @pytest.fixture(scope="class")
    def world(self):
        return build_az_world()

    def test_blocked_domain_attributed_to_delta_ingress(self, world):
        tracer = CenTrace(
            world.sim, world.remote_client, asdb=world.asdb,
            config=CenTraceConfig(repetitions=2),
        )
        endpoint = world.endpoints[0]
        result = tracer.measure(endpoint.ip, world.test_domains[0], "http")
        assert result.blocked
        assert result.blocking_hop.asn == 29049
        assert result.blocking_hop.country == "AZ"
        assert result.blocking_hop.ip == world.notes["ingress_ip"]

    def test_unblocked_domain_reaches_endpoint(self, world):
        tracer = CenTrace(
            world.sim, world.remote_client, asdb=world.asdb,
            config=CenTraceConfig(repetitions=2),
        )
        endpoint = world.endpoints[4]
        result = tracer.measure(endpoint.ip, world.test_domains[4], "http")
        assert not result.blocked

    def test_tls_blocking_matches_http(self, world):
        tracer = CenTrace(
            world.sim, world.remote_client, asdb=world.asdb,
            config=CenTraceConfig(repetitions=2),
        )
        endpoint = world.endpoints[0]
        result = tracer.measure(endpoint.ip, world.test_domains[0], PROTO_TLS)
        assert result.blocked
        assert result.blocking_hop.asn == 29049


class TestKZExtraterritorial:
    def test_ru_transit_blocks_before_kz(self):
        world = build_kz_world()
        tracer = CenTrace(
            world.sim, world.remote_client, asdb=world.asdb,
            config=CenTraceConfig(repetitions=2),
        )
        # Find an RU-routed endpoint (its hosted domain is ruorg*).
        endpoint = next(
            e for e in world.endpoints if e.domains[0].startswith("ruorg")
        )
        # bridges.torproject.org is blocked in Russian transit.
        result = tracer.measure(endpoint.ip, "bridges.torproject.org", "http")
        assert result.blocked
        assert result.blocking_hop.country == "RU"
        assert result.blocking_hop.asn in (31133, 43727)
        # pokerstars is blocked further along, inside Kazakhstan.
        result_kz = tracer.measure(endpoint.ip, "www.pokerstars.com", "http")
        assert result_kz.blocked
        assert result_kz.blocking_hop.country == "KZ"
        assert result_kz.blocking_hop.asn == 9198

    def test_banner_grab_on_centrace_hop_finds_vendor(self):
        world = build_kz_world()
        tracer = CenTrace(
            world.sim, world.remote_client, asdb=world.asdb,
            config=CenTraceConfig(repetitions=2),
        )
        endpoint = next(
            e for e in world.endpoints if e.domains[0].startswith("peerorg")
        )
        result = tracer.measure(endpoint.ip, "www.pokerstars.com", "http")
        assert result.blocked and result.in_path
        report = CenProbe(world.topology).scan(result.blocking_hop.ip)
        assert report.vendor in {
            "Cisco",
            "Fortinet",
            "Kerio Control",
            "Mikrotik",
        }
