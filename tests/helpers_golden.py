"""Shared golden-digest helper: canonical hash of a campaign's outputs.

The digest covers every byte the campaign persists (traces, fuzz
reports, banners, meta) in a canonical file order, so any behavioral
drift in the simulator walk, the measurement tools or the serializers
shows up as a digest change. Telemetry reports are deliberately
excluded (``run_report`` stays None without a sink), keeping the digest
free of wall-clock content.
"""

import hashlib
import json
from pathlib import Path

from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.geo.countries import build_world
from repro.netsim.faults import FaultPlan
from repro.persist import save_campaign


def _canonical_bytes(path: Path) -> bytes:
    """A file's digest-relevant bytes.

    ``meta.json`` carries an ``environment`` section (worker count and
    the like) that describes *how* the run executed, not *what* it
    measured — the same identity/wall split RunReport makes. Dropping it
    here keeps the digest a statement about measurement bytes, so the
    serial == parallel contract stays enforceable.
    """
    data = path.read_bytes()
    if path.name == "meta.json":
        meta = json.loads(data)
        meta.pop("environment", None)
        return json.dumps(meta, indent=2, sort_keys=True).encode()
    return data


def digest_dir(out: Path) -> str:
    """Canonical sha256 over a saved campaign directory (name + bytes)."""
    digest = hashlib.sha256()
    for path in sorted(out.iterdir()):
        digest.update(path.name.encode())
        digest.update(_canonical_bytes(path))
    return digest.hexdigest()


def campaign_digest(
    tmp_path: Path,
    country: str,
    seed: int,
    workers,
    tag: str,
    *,
    scale: float = 0.35,
    fault_plan: str = None,
    config: CampaignConfig = None,
):
    """Run one small campaign and hash its full serialized form."""
    if config is None:
        config = CampaignConfig(
            repetitions=2, max_endpoints=4, fuzz_max_endpoints=2
        )
    if fault_plan is not None:
        import dataclasses

        config = dataclasses.replace(
            config, fault_plan=FaultPlan.from_spec(fault_plan)
        )
    world = build_world(country, seed=seed, scale=scale)
    campaign = run_campaign(world, config, workers=workers)
    out = tmp_path / tag
    save_campaign(campaign, str(out))
    return digest_dir(out), campaign
