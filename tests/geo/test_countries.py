"""Study-world construction: structure and ground-truth placement."""

import pytest

from repro.geo.countries import (
    COUNTRIES,
    TEST_DOMAINS,
    build_az_world,
    build_blockpage_study_world,
    build_by_world,
    build_calibration_world,
    build_kz_world,
    build_ru_world,
    build_world,
)


class TestDispatch:
    def test_all_countries_buildable(self):
        for country in COUNTRIES:
            world = build_world(country, scale=0.2)
            assert world.country == country
            assert world.endpoints

    def test_unknown_country_rejected(self):
        with pytest.raises(ValueError):
            build_world("XX")

    def test_case_insensitive(self):
        assert build_world("az", scale=0.2).country == "AZ"


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_az_world(seed=5)
        b = build_az_world(seed=5)
        assert [e.ip for e in a.endpoints] == [e.ip for e in b.endpoints]
        assert [d.name for d in a.devices] == [d.name for d in b.devices]

    def test_different_seed_different_quoting_mix(self):
        a = build_ru_world(seed=5, scale=0.2)
        b = build_ru_world(seed=6, scale=0.2)
        quoting_a = [r.quoting for r in a.topology.routers.values()]
        quoting_b = [r.quoting for r in b.topology.routers.values()]
        assert quoting_a != quoting_b


class TestStructure:
    def test_az_centralized(self):
        world = build_az_world()
        assert len(world.endpoints) == 29
        assert world.in_country_client is not None
        # The state device's terminating hop lies in Delta Telecom.
        ingress_ip = world.notes["ingress_ip"]
        assert world.asdb.lookup(ingress_ip).asn == 29049

    def test_by_has_no_in_country_client(self):
        world = build_by_world(scale=0.3)
        assert world.in_country_client is None
        assert len({e.asn for e in world.endpoints}) >= 15

    def test_kz_ru_transit_registered(self):
        world = build_kz_world(scale=0.3)
        assert world.asdb.as_info(31133).country == "RU"
        assert world.asdb.as_info(43727).country == "RU"
        assert world.asdb.as_info(9198).country == "KZ"

    def test_kz_in_country_targets_include_circumvention_origins(self):
        world = build_kz_world(scale=0.3)
        domains = {t.domains[0] for t in world.in_country_targets}
        assert "www.pokerstars.com" in domains
        assert "www.dailymotion.com" in domains

    def test_ru_scaled_by_default(self):
        world = build_ru_world()
        assert len(world.endpoints) == round(1291 * 0.1)
        assert len({e.asn for e in world.endpoints}) == 50

    def test_every_endpoint_routable(self):
        for country in COUNTRIES:
            world = build_world(country, scale=0.15)
            for endpoint in world.endpoints:
                assert world.topology.has_route(
                    world.remote_client.ip, endpoint.ip
                )

    def test_device_host_ps_resolve(self):
        world = build_kz_world(scale=0.3)
        for name, ip in world.device_host_ip.items():
            assert world.topology.node_at(ip) is not None

    def test_test_domains_are_five_per_country(self):
        for country, domains in TEST_DOMAINS.items():
            assert len(domains) == 5


class TestSpecialWorlds:
    def test_blockpage_world_all_devices_labeled_vendor(self):
        world = build_blockpage_study_world(scale=0.5)
        assert all(d.vendor for d in world.devices)

    def test_blockpage_world_size(self):
        assert len(build_blockpage_study_world().endpoints) == 76

    def test_calibration_world_has_megapath_endpoint(self):
        world = build_calibration_world()
        assert len(world.endpoints) == 20
        routes = [
            world.topology.route_between(world.remote_client.ip, e.ip)
            for e in world.endpoints
        ]
        assert max(len(r.paths) for r in routes) >= 100
