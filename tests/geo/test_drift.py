"""Epochal world drift: op validation, plan serialization, application
semantics, the unit-impact analysis, and seeded plan generation."""

import json

import pytest

from repro.devices.actions import (
    IPID_CONSTANT,
    KIND_BLOCKPAGE,
    KIND_DROP,
    KIND_RST,
)
from repro.geo.countries import build_world
from repro.geo.drift import (
    DRIFT_BLOCKPAGE_HTML,
    DriftError,
    DriftOp,
    DriftPlan,
    apply_drift,
    auto_drift_plan,
    devices_in_as,
    ops_touching,
    unit_touchpoints,
)


def kz_world(**kwargs):
    return build_world("KZ", seed=11, scale=0.35, **kwargs)


def kz_device(world):
    """The device every selected KZ endpoint routes through."""
    names = devices_in_as(world, 9198)
    assert "dev16" in names
    return next(d for d in world.devices if d.name == "dev16")


class TestOpValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(DriftError, match="unknown drift op kind"):
            DriftOp(epoch=1, kind="meteor", target="dev16")

    def test_epoch_zero_rejected(self):
        with pytest.raises(DriftError, match="epoch must be >= 1"):
            DriftOp(epoch=0, kind="firmware", target="dev16")

    def test_rehome_requires_as_target(self):
        with pytest.raises(DriftError, match="as:<asn>"):
            DriftOp(epoch=1, kind="rehome", target="dev16", new_name="X")

    def test_rehome_must_change_something(self):
        with pytest.raises(DriftError, match="changes nothing"):
            DriftOp(epoch=1, kind="rehome", target="as:9198")

    def test_rules_must_change_something(self):
        with pytest.raises(DriftError, match="changes nothing"):
            DriftOp(epoch=1, kind="rules", target="dev16")

    def test_unknown_action_kind_rejected(self):
        with pytest.raises(DriftError, match="unknown action kind"):
            DriftOp(epoch=1, kind="firmware", target="dev16",
                    action_kind="nuke")

    def test_tls_blockpage_rejected(self):
        with pytest.raises(DriftError, match="encrypted"):
            DriftOp(epoch=1, kind="firmware", target="dev16",
                    tls_action_kind=KIND_BLOCKPAGE)


class TestSerialization:
    def plan(self):
        return DriftPlan(name="p", ops=(
            DriftOp(epoch=1, kind="firmware", target="dev16",
                    action_kind=KIND_RST, fixed_ttl=64),
            DriftOp(epoch=2, kind="rules", target="dev16",
                    add_domains=("x.example",)),
            DriftOp(epoch=2, kind="rehome", target="as:9198",
                    new_name="KazTelecom II"),
        ))

    def test_round_trip(self):
        plan = self.plan()
        assert DriftPlan.from_dict(plan.to_dict()) == plan

    def test_to_dict_omits_defaults(self):
        op_dict = self.plan().ops[0].to_dict()
        assert set(op_dict) == {
            "epoch", "kind", "target", "action_kind", "fixed_ttl"
        }

    def test_json_round_trip_via_from_spec(self):
        plan = self.plan()
        assert DriftPlan.from_spec(json.dumps(plan.to_dict())) == plan

    def test_from_spec_file(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert DriftPlan.from_spec(f"@{path}") == plan

    def test_from_spec_missing_file_is_typed_error(self, tmp_path):
        with pytest.raises(DriftError, match="cannot read drift plan file"):
            DriftPlan.from_spec(f"@{tmp_path / 'nope.json'}")

    def test_from_spec_malformed_json_is_typed_error(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(DriftError, match="malformed drift plan JSON"):
            DriftPlan.from_spec(f"@{path}")
        with pytest.raises(DriftError, match="malformed drift plan JSON"):
            DriftPlan.from_spec("{not json")

    def test_from_spec_non_object_json_is_typed_error(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("[1, 2]")
        with pytest.raises(DriftError, match="must be a JSON object"):
            DriftPlan.from_spec(f"@{path}")

    def test_unknown_fields_rejected(self):
        with pytest.raises(DriftError, match="unknown drift op fields"):
            DriftOp.from_dict({"epoch": 1, "kind": "firmware",
                               "target": "dev16", "warp": 9})
        with pytest.raises(DriftError, match="unknown drift plan fields"):
            DriftPlan.from_dict({"name": "p", "ops": [], "extra": 1})

    def test_ops_at_is_cumulative(self):
        plan = self.plan()
        assert len(plan.ops_at(0)) == 0
        assert len(plan.ops_at(1)) == 1
        assert len(plan.ops_at(2)) == 3
        assert plan.max_epoch() == 2
        assert not plan.is_noop()
        assert DriftPlan().is_noop()


class TestApply:
    def test_unknown_device_named_in_error(self):
        world = kz_world()
        plan = DriftPlan(ops=(
            DriftOp(epoch=1, kind="firmware", target="no-such-device"),
        ))
        with pytest.raises(DriftError, match="no-such-device"):
            apply_drift(world, plan, epoch=1)

    def test_firmware_flips_action_and_tls_follows(self):
        world = kz_world()
        device = kz_device(world)
        assert device.action.kind == KIND_DROP
        plan = DriftPlan(ops=(
            DriftOp(epoch=1, kind="firmware", target="dev16",
                    action_kind=KIND_BLOCKPAGE, ip_id_value=777),
        ))
        assert apply_drift(world, plan, epoch=1) == 1
        assert device.action.kind == KIND_BLOCKPAGE
        # No cleartext to inject into a TLS stream: degrades to RST.
        assert device.action_tls.kind == KIND_RST
        assert device.action.blockpage_html == DRIFT_BLOCKPAGE_HTML
        assert device.action.signature.ip_id_mode == IPID_CONSTANT
        assert device.action.signature.ip_id_value == 777

    def test_epoch_zero_is_untouched_baseline(self):
        world = kz_world()
        plan = DriftPlan(ops=(
            DriftOp(epoch=1, kind="firmware", target="dev16",
                    action_kind=KIND_RST),
        ))
        assert apply_drift(world, plan, epoch=0) == 0
        assert kz_device(world).action.kind == KIND_DROP

    def test_rehome_updates_registry(self):
        world = kz_world()
        plan = DriftPlan(ops=(
            DriftOp(epoch=1, kind="rehome", target="as:9198",
                    new_name="NewCo", new_country="RU"),
        ))
        apply_drift(world, plan, epoch=1)
        device = kz_device(world)
        meta = world.asdb.lookup(world.device_host_ip[device.name])
        assert meta.as_name == "NewCo"
        assert meta.country == "RU"

    def test_rules_churn(self):
        world = kz_world()
        device = kz_device(world)
        before = {r.domain for r in device.blocklist.rules}
        victim = sorted(before)[0]
        plan = DriftPlan(ops=(
            DriftOp(epoch=1, kind="rules", target="dev16",
                    add_domains=("fresh.example",),
                    remove_domains=(victim,)),
        ))
        apply_drift(world, plan, epoch=1)
        after = {r.domain for r in device.blocklist.rules}
        assert "fresh.example" in after
        assert victim not in after

    def test_build_world_applies_plan(self):
        plan = DriftPlan(ops=(
            DriftOp(epoch=1, kind="firmware", target="dev16",
                    action_kind=KIND_RST),
        ))
        drifted = kz_world(drift_plan=plan, epoch=1)
        assert kz_device(drifted).action.kind == KIND_RST
        assert drifted.spec.drift_plan == plan
        assert drifted.spec.epoch == 1
        # Epoch 0 with a plan is byte-for-byte the base world.
        base = kz_world(drift_plan=plan, epoch=0)
        assert kz_device(base).action.kind == KIND_DROP


class TestImpactAnalysis:
    def test_touchpoints_cover_the_blocking_device(self):
        world = kz_world()
        endpoint = world.endpoints[0]
        names, asns = unit_touchpoints(
            world, world.remote_client.ip, endpoint.ip
        )
        assert "dev16" in names
        assert 9198 in asns

    def test_ops_touching_filters_by_target(self):
        on_route = DriftOp(epoch=1, kind="firmware", target="dev16",
                           action_kind=KIND_RST)
        off_route = DriftOp(epoch=1, kind="firmware", target="dev99",
                            action_kind=KIND_RST)
        rehome = DriftOp(epoch=1, kind="rehome", target="as:9198",
                         new_name="X")
        far_rehome = DriftOp(epoch=1, kind="rehome", target="as:65000",
                             new_name="Y")
        ops = (on_route, off_route, rehome, far_rehome)
        touching = ops_touching(ops, ("dev16",), (9198,))
        assert touching == (on_route, rehome)


class TestAutoPlan:
    def test_deterministic_for_a_seed(self):
        world = kz_world()
        a = auto_drift_plan(world, epochs=4, seed=3, ops_per_epoch=2)
        b = auto_drift_plan(world, epochs=4, seed=3, ops_per_epoch=2)
        assert a == b
        assert a != auto_drift_plan(world, epochs=4, seed=4, ops_per_epoch=2)

    def test_covers_requested_epochs(self):
        world = kz_world()
        plan = auto_drift_plan(world, epochs=3, seed=0)
        assert plan.max_epoch() == 2
        assert len(plan.ops) == 2
        # The generated plan is fully declarative: it survives a JSON
        # round trip and applies to a fresh world build.
        restored = DriftPlan.from_dict(
            json.loads(json.dumps(plan.to_dict()))
        )
        assert restored == plan
        build_world("KZ", seed=11, scale=0.35, drift_plan=restored, epoch=2)
