"""Synthetic IP-to-AS database."""

import pytest
from hypothesis import given, strategies as st

from repro.geo.asdb import ASDatabase


class TestRegistration:
    def test_register_and_lookup_info(self):
        db = ASDatabase()
        info = db.register(64500, "Test AS", "XX")
        assert info.asn == 64500
        assert db.as_info(64500).country == "XX"

    def test_register_idempotent(self):
        db = ASDatabase()
        db.register(64500, "Test AS", "XX")
        again = db.register(64500, "Other Name", "YY")
        assert again.name == "Test AS"  # first registration wins

    def test_all_ases(self):
        db = ASDatabase()
        db.register(1, "a", "AA")
        db.register(2, "b", "BB")
        assert {info.asn for info in db.all_ases()} == {1, 2}


class TestAllocation:
    def test_allocation_requires_registration(self):
        with pytest.raises(KeyError):
            ASDatabase().allocate(99)

    def test_allocations_unique(self):
        db = ASDatabase()
        db.register(64500, "a", "AA")
        ips = {db.allocate(64500) for _ in range(1000)}
        assert len(ips) == 1000

    def test_lookup_resolves_to_owner(self):
        db = ASDatabase()
        db.register(64500, "a", "AA")
        db.register(64501, "b", "BB")
        ip_a = db.allocate(64500)
        ip_b = db.allocate(64501)
        assert db.lookup(ip_a).asn == 64500
        assert db.lookup(ip_b).asn == 64501
        assert db.lookup_country(ip_a) == "AA"
        assert db.lookup_asn(ip_b) == 64501

    def test_unknown_ip_lookup_none(self):
        assert ASDatabase().lookup("203.0.113.77") is None

    def test_overflow_grows_new_prefix(self):
        db = ASDatabase()
        db.register(64500, "a", "AA")
        # Exhaust the first /16 (65534 hosts) quickly by poking the
        # internals; then the next allocation must still resolve.
        db._asn_counter[64500] = 65534
        ip = db.allocate(64500)
        assert db.lookup(ip).asn == 64500

    def test_special_first_octets_skipped(self):
        db = ASDatabase()
        db.register(64500, "a", "AA")
        ip = db.allocate(64500)
        first_octet = int(ip.split(".")[0])
        assert first_octet not in (0, 10, 127, 169, 172, 192, 198, 203, 224)

    @given(st.integers(min_value=1, max_value=50))
    def test_many_ases_disjoint_spaces(self, count):
        db = ASDatabase()
        for asn in range(count):
            db.register(asn, f"as{asn}", "XX")
        ips = {asn: db.allocate(asn) for asn in range(count)}
        for asn, ip in ips.items():
            assert db.lookup_asn(ip) == asn
