"""Shared fixtures: small worlds and session-scoped campaigns.

The country campaigns are expensive (tens of seconds each), so the
experiment tests share one set, built at reduced scale and cached for
the whole test session.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from helpers import build_linear_world  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="also run tests marked slow (e.g. the full chaos grid)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="needs --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def linear_world():
    """A clean 5-router world without any censorship device."""
    return build_linear_world()


@pytest.fixture(scope="session")
def small_campaigns():
    """Reduced-scale campaigns for all four countries (shared)."""
    from repro.experiments.campaign import get_campaign

    return {
        country: get_campaign(country, scale=0.35, repetitions=2)
        for country in ("AZ", "BY", "KZ", "RU")
    }


@pytest.fixture(scope="session")
def full_campaigns():
    """Default-scale campaigns (used by the statistics-shape tests)."""
    from repro.experiments.campaign import get_campaign

    return {
        country: get_campaign(country) for country in ("AZ", "BY", "KZ", "RU")
    }


@pytest.fixture(scope="session")
def blockpage_case_study():
    from repro.experiments.fig9 import blockpage_campaign

    return blockpage_campaign()
