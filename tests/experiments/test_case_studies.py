"""The standalone case-study experiments (§4.1, §5.2/§5.3, §6.3, §7)."""

import pytest

from repro.experiments import (
    fig1,
    fig6,
    fig9,
    sec41_pathvar,
    sec53_banners,
    sec63_circumvention,
    sec74_correlations,
)


class TestFig1:
    def test_kz_in_country_blocking_in_kazakhtelecom(self):
        result = fig1.run(repetitions=2)
        assert result.extra["blocking_asns"] == [9198]
        assert result.extra["device_distances"] == [3]
        assert "AS9198" in result.extra["ascii"] or "9198" in result.extra["ascii"]
        assert "digraph" in result.extra["dot"]


class TestSec41:
    def test_calibration_shape(self):
        result = sec41_pathvar.run(traceroutes=60)
        # 60 traces over the 125-path endpoint surface a few dozen
        # unique paths; the full 200-trace run exceeds 100 (§4.1).
        assert result.extra["max_unique_paths"] > 40
        # Typical endpoints converge quickly.
        assert result.extra["avg_traces_excluding_outlier"] <= 20


class TestBlockpageCaseStudy:
    @pytest.fixture(scope="class")
    def fig9_result(self, blockpage_case_study):
        return fig9.run()

    def test_classifier_accuracy_high(self, fig9_result):
        assert fig9_result.extra["cv_accuracy"] >= 0.8

    def test_censor_response_among_top_features(self, fig9_result):
        importance = fig9_result.extra["importance"]
        assert "CensorResponse" in importance.top(6)

    def test_fifteen_cv_repetitions(self, fig9_result):
        importance = fig9_result.extra["importance"]
        assert len(importance.cv.accuracies) == 15

    def test_all_case_study_devices_labeled(self, fig9_result):
        assert fig9_result.extra["labeled_devices"] == 76


class TestSec53:
    @pytest.fixture(scope="class")
    def result(self, small_campaigns):
        return sec53_banners.run(campaigns=small_campaigns)

    def test_case_study_service_share(self, result):
        assert 70 <= result.extra["case_service_pct"] <= 100

    def test_banner_labels_match_blockpages(self, result):
        assert result.extra["label_mismatches"] == 0

    def test_vendor_inventory_nonempty(self, result):
        vendors = result.extra["vendor_counts"]
        assert vendors.get("Fortinet", 0) >= 1
        assert vendors.get("Cisco", 0) >= 1


class TestSec63:
    @pytest.fixture(scope="class")
    def result(self):
        return sec63_circumvention.run()

    def test_pokerstars_padding_circumvents(self, result):
        assert result.extra["pokerstars_pad_circumvented"]

    def test_dailymotion_subdomains_circumvent(self, result):
        assert result.extra["dailymotion_subdomain_circumvented"]

    def test_strict_servers_return_paper_error_codes(self, result):
        assert set(result.extra["error_codes_observed"]) & {400, 403, 505}


class TestClustering:
    @pytest.fixture(scope="class")
    def fig6_result(self, small_campaigns):
        return fig6.run(campaigns=small_campaigns)

    def test_same_country_clusters_dominate(self, fig6_result):
        assert fig6_result.extra["same_country_pct"] >= 55

    def test_multiple_clusters_found(self, fig6_result):
        assert fig6_result.extra["n_clusters"] >= 4

    def test_cross_country_clusters_exist(self, fig6_result):
        assert fig6_result.extra["cross_country_clusters"]

    def test_vendor_correlations(self, small_campaigns):
        result = sec74_correlations.run(campaigns=small_campaigns)
        within = result.extra["within_vendor"]
        assert within and min(within.values()) >= 0.75  # paper: >0.78
        assert result.extra["cross_vendor_mean"] < min(within.values())


class TestSec71Classification:
    def test_held_out_vendors_reidentified(self, small_campaigns):
        from repro.experiments import sec71_classify

        result = sec71_classify.run(campaigns=small_campaigns)
        accuracy = result.extra["held_out_accuracy"]
        if accuracy is None:
            pytest.skip("not enough multi-device vendors at this scale")
        assert accuracy >= 0.5

    def test_national_systems_not_confidently_misattributed(self, small_campaigns):
        from repro.experiments import sec71_classify

        result = sec71_classify.run(campaigns=small_campaigns)
        graded = result.extra["graded"]
        # At most a sliver of national systems may be confidently (and
        # wrongly) attributed to a commercial vendor.
        total = len(result.extra["report"].predictions) or 1
        assert graded["national_system"] / total < 0.3
