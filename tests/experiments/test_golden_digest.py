"""Golden campaign digests: the transit-engine refactor contract.

These constants were captured from the three-loop, module-global-counter
implementation immediately before the unified transit engine and
NetContext landed. The engine must keep producing byte-identical
campaign outputs — serial and parallel, with and without fault plans.
A legitimate behavior change (new measurement semantics) must update
these constants in the same commit that explains why.
"""

import pytest

from ..helpers_golden import campaign_digest

GOLDEN = {
    "az-serial": "08ac7d2654866798149a29ac4208ffef20c0090da786048d56159e33a8e12f51",
    "az-par2": "08ac7d2654866798149a29ac4208ffef20c0090da786048d56159e33a8e12f51",
    "az-lossy-serial": "65879e698b82e533650b3d9100513a9436b8ff7a45f609e53897a0f6008e1570",
    "az-lossy-par2": "65879e698b82e533650b3d9100513a9436b8ff7a45f609e53897a0f6008e1570",
    "kz-serial": "b136d75b9a0fd408bc6c90e373bc8f4f1e00dff7e40ea9bfd12802f5439ad4e1",
}

CASES = [
    ("AZ", 7, None, "az-serial", None),
    ("AZ", 7, 2, "az-par2", None),
    ("AZ", 7, None, "az-lossy-serial", "lossy"),
    ("AZ", 7, 2, "az-lossy-par2", "lossy"),
    ("KZ", 11, None, "kz-serial", None),
]


@pytest.mark.parametrize(
    "country,seed,workers,tag,fault_plan", CASES, ids=[c[3] for c in CASES]
)
def test_campaign_digest_matches_pre_refactor(
    tmp_path, country, seed, workers, tag, fault_plan
):
    digest, _ = campaign_digest(
        tmp_path, country, seed, workers, tag, fault_plan=fault_plan
    )
    assert digest == GOLDEN[tag]


def test_serial_and_parallel_share_a_digest():
    """Sanity on the table itself: the executor contract (bit-identity
    across worker counts) is encoded in the constants."""
    assert GOLDEN["az-serial"] == GOLDEN["az-par2"]
    assert GOLDEN["az-lossy-serial"] == GOLDEN["az-lossy-par2"]
