"""Golden campaign digests: the transit-engine refactor contract.

These constants were captured from the three-loop, module-global-counter
implementation immediately before the unified transit engine and
NetContext landed. The engine must keep producing byte-identical
campaign outputs — serial and parallel, with and without fault plans.
A legitimate behavior change (new measurement semantics) must update
these constants in the same commit that explains why.

Recaptured for meta.json format v3 (kind tag, provenance block,
environment section): every measurement file — traces, fuzz reports,
banners, report — was verified byte-identical against the v2 baseline
per-file hashes; only meta.json changed. The ``environment`` section is
canonicalized away by ``digest_dir`` so the serial == parallel identity
below still holds with worker counts recorded in meta.
"""

import pytest

from ..helpers_golden import campaign_digest

GOLDEN = {
    "az-serial": "af65d39727188aec652053f5288bbd6a8f49b36ccc4322e028382d27b8d21bef",
    "az-par2": "af65d39727188aec652053f5288bbd6a8f49b36ccc4322e028382d27b8d21bef",
    "az-lossy-serial": "62962b5cddf7f5203bd50921c99ffdde38cfacb1337cd1ea502c2168ec9b8bab",
    "az-lossy-par2": "62962b5cddf7f5203bd50921c99ffdde38cfacb1337cd1ea502c2168ec9b8bab",
    "kz-serial": "68ede6f269f27461938794737d92937521b5667d76cc97fd816aa764edf6ff01",
}

CASES = [
    ("AZ", 7, None, "az-serial", None),
    ("AZ", 7, 2, "az-par2", None),
    ("AZ", 7, None, "az-lossy-serial", "lossy"),
    ("AZ", 7, 2, "az-lossy-par2", "lossy"),
    ("KZ", 11, None, "kz-serial", None),
]


@pytest.mark.parametrize(
    "country,seed,workers,tag,fault_plan", CASES, ids=[c[3] for c in CASES]
)
def test_campaign_digest_matches_pre_refactor(
    tmp_path, country, seed, workers, tag, fault_plan
):
    digest, _ = campaign_digest(
        tmp_path, country, seed, workers, tag, fault_plan=fault_plan
    )
    assert digest == GOLDEN[tag]


def test_serial_and_parallel_share_a_digest():
    """Sanity on the table itself: the executor contract (bit-identity
    across worker counts) is encoded in the constants."""
    assert GOLDEN["az-serial"] == GOLDEN["az-par2"]
    assert GOLDEN["az-lossy-serial"] == GOLDEN["az-lossy-par2"]
