"""The incremental epoch scheduler: epoch-0 identity with a direct
campaign run, and cross-restart unit reuse through the persistent
cache — the longitudinal observatory's two load-bearing contracts."""

import pytest

from repro.devices.actions import KIND_RST
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.experiments.epochs import EpochScheduler
from repro.geo.countries import build_world
from repro.geo.drift import DriftOp, DriftPlan
from repro.persist import UnitCache, save_campaign
from repro.telemetry import Telemetry

from ..helpers_golden import digest_dir
from .test_golden_digest import GOLDEN

CONFIG = CampaignConfig(repetitions=2, max_endpoints=4, fuzz_max_endpoints=2)

KZ_PLAN = DriftPlan(name="kz-flip", ops=(
    DriftOp(epoch=1, kind="firmware", target="dev16", action_kind=KIND_RST),
))


def kz_scheduler(**kwargs):
    return EpochScheduler("KZ", seed=11, scale=0.35, config=CONFIG, **kwargs)


class TestEpochZeroIdentity:
    def test_no_plan_epoch_matches_golden_digest(self, tmp_path):
        """An undrifted epoch IS the direct campaign, byte for byte."""
        scheduler = EpochScheduler(
            "AZ", seed=7, scale=0.35, config=CONFIG
        )
        result = scheduler.run_epoch(0)
        out = tmp_path / "epoch0"
        save_campaign(result.campaign, out)
        assert digest_dir(out) == GOLDEN["az-serial"]

    def test_with_plan_epoch_zero_measures_identically(self, tmp_path):
        """A plan whose ops start at epoch 1 leaves epoch 0 untouched:
        every measurement file matches a plan-free direct run (meta
        differs only in recorded provenance)."""
        scheduler = kz_scheduler(drift_plan=KZ_PLAN)
        result = scheduler.run_epoch(0)
        save_campaign(result.campaign, tmp_path / "epoch0")

        world = build_world("KZ", seed=11, scale=0.35)
        direct = run_campaign(world, CONFIG)
        save_campaign(direct, tmp_path / "direct")

        for name in ("traces.jsonl", "fuzz.jsonl", "banners.jsonl"):
            assert (tmp_path / "epoch0" / name).read_bytes() == (
                tmp_path / "direct" / name
            ).read_bytes()


class TestCacheReuse:
    def test_no_drift_epoch_reuses_from_persisted_cache(self, tmp_path):
        """A fresh process (new UnitCache over the same directory) must
        answer an unchanged epoch from disk — the ISSUE's >= 50% bar;
        with no drift at all it is 100%."""
        cache_dir = tmp_path / "cache"
        first = kz_scheduler(cache=UnitCache(cache_dir))
        baseline = first.run_epoch(0)
        assert baseline.reused_units == 0
        assert baseline.executed_trace_units > 0

        telemetry = Telemetry()
        second = kz_scheduler(
            cache=UnitCache(cache_dir, telemetry=telemetry),
            telemetry=telemetry,
        )
        rerun = second.run_epoch(1)  # no plan: epoch 1 == epoch 0
        assert rerun.total_units == baseline.total_units
        assert rerun.reuse_rate >= 0.5
        assert rerun.executed_trace_units == 0
        assert rerun.executed_fuzz_units == 0
        counters = telemetry.counters
        assert counters["store.units_reused.trace"] == (
            baseline.executed_trace_units
        )
        assert counters["store.unit_cache_hits"] == rerun.total_units

    def test_drifted_epoch_reruns_only_touched_units(self, tmp_path):
        """The firmware flip lands on the device every KZ route crosses,
        so traces rerun; what the op cannot reach stays cached."""
        cache = UnitCache(tmp_path / "cache")
        scheduler = kz_scheduler(drift_plan=KZ_PLAN, cache=cache)
        epoch0 = scheduler.run_epoch(0)
        epoch1 = scheduler.run_epoch(1)
        assert epoch1.executed_trace_units == epoch0.executed_trace_units
        blocked = epoch1.campaign.blocked_remote()
        assert blocked and all(
            r.blocking_type == "RST" for r in blocked
        )

    def test_cached_run_matches_uncached_ground_truth(self, tmp_path):
        """Reuse must be invisible in the output: a cached 2-epoch run
        serializes byte-identically to a cache-free one."""
        cached = kz_scheduler(
            drift_plan=KZ_PLAN, cache=UnitCache(tmp_path / "cache")
        )
        plain = kz_scheduler(drift_plan=KZ_PLAN)
        for epoch in (0, 1):
            a = cached.run_epoch(epoch)
            b = plain.run_epoch(epoch)
            save_campaign(a.campaign, tmp_path / f"cached-{epoch}")
            save_campaign(b.campaign, tmp_path / f"plain-{epoch}")
            assert digest_dir(tmp_path / f"cached-{epoch}") == digest_dir(
                tmp_path / f"plain-{epoch}"
            )
