"""Experiment reproductions: assert the paper's qualitative shapes.

These run the real experiment modules over reduced-scale campaigns
(shared session fixture) and check the findings the paper reports —
who blocks, how, where — rather than absolute counts.
"""

import pytest

from repro.core.centrace.results import (
    LOC_AT_E,
    LOC_PAST_E,
    LOC_PATH,
    TYPE_RST,
    TYPE_TIMEOUT,
)
from repro.experiments import (
    fig3,
    fig4,
    fig5,
    sec43_quotes,
    table1,
    table2,
)


@pytest.fixture(scope="module")
def campaigns(small_campaigns):
    return small_campaigns


class TestTable1:
    def test_blocked_fraction_ordering(self, campaigns):
        result = table1.run(campaigns=campaigns)
        rows = result.row_dict()
        fractions = {
            country: float(rows[country][8]) for country in ("AZ", "BY", "KZ", "RU")
        }
        # Paper: KZ most blocked (86%), RU least (4%).
        assert fractions["KZ"] > fractions["AZ"] > fractions["RU"]
        assert fractions["KZ"] > fractions["BY"] > fractions["RU"]

    def test_in_country_structure(self, campaigns):
        rows = table1.run(campaigns=campaigns).row_dict()
        assert rows["BY"][1] == 0  # no BY vantage point
        assert rows["RU"][3] == 0  # RU in-country observes no censorship
        assert rows["AZ"][3] > 0
        assert rows["KZ"][3] > 0

    def test_endpoint_asn_diversity(self, campaigns):
        rows = table1.run(campaigns=campaigns).row_dict()
        assert rows["RU"][5] > rows["AZ"][5]


class TestTable2:
    def test_all_counts_match_paper(self):
        result = table2.run()
        assert all(row[5] == "yes" for row in result.rows)
        assert len(result.rows) == 24


class TestFig3:
    def test_drops_and_resets_dominate(self, campaigns):
        result = fig3.run(campaigns=campaigns)
        assert result.extra["drops_and_resets_pct"] > 90

    def test_path_location_dominates(self, campaigns):
        result = fig3.run(campaigns=campaigns)
        assert result.extra["on_path_pct"] > 60

    def test_past_e_only_in_ru(self, campaigns):
        result = fig3.run(campaigns=campaigns)
        for row in result.rows:
            country, _type = row[0], row[1]
            past_e = row[2 + 3]
            if country != "RU":
                assert past_e == 0

    def test_by_uses_rst_az_kz_use_drops(self, campaigns):
        rows = fig3.run(campaigns=campaigns).rows
        totals = {}
        for country, block_type, *counts in rows:
            totals[(country, block_type)] = counts[-1]
        assert totals[("BY", TYPE_RST)] > 0
        assert totals[("AZ", TYPE_TIMEOUT)] > totals[("AZ", TYPE_RST)]
        assert totals[("KZ", TYPE_TIMEOUT)] > totals[("KZ", TYPE_RST)]


class TestFig4:
    def test_az_kz_exclusively_in_path(self, campaigns):
        rows = fig4.run(campaigns=campaigns).row_dict()
        assert rows["AZ"][2] == 0  # no on-path
        assert rows["KZ"][2] == 0

    def test_by_mostly_on_path(self, campaigns):
        rows = fig4.run(campaigns=campaigns).row_dict()
        country, in_path, on_path, *_ = rows["BY"]
        # The Cogent torproject drop is in-path; the endpoint-AS
        # injectors are on-path — both populations must be visible.
        assert on_path > 0 and in_path > 0

    def test_az_blocks_far_from_endpoints(self, campaigns):
        rows = fig4.run(campaigns=campaigns).row_dict()
        assert float(rows["AZ"][4]) >= 3  # median hops from endpoint
        assert float(rows["RU"][4]) <= 2


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, campaigns):
        return fig5.run(campaigns=campaigns)

    def _rate(self, result, strategy):
        row = result.row_dict()[strategy]
        value = row[-1]
        return float(value) if value != "-" else None

    def test_capitalize_rarely_evades(self, result):
        assert self._rate(result, "Get Word Cap.") < 5
        assert self._rate(result, "Host Word Cap.") < 5

    def test_headers_never_evade(self, result):
        assert self._rate(result, "Header Alt.") < 5

    def test_remove_strategies_evade_heavily(self, result):
        assert self._rate(result, "Host Word Rem.") > 80
        assert self._rate(result, "Get Word Rem.") > 50

    def test_tld_beats_subdomain(self, result):
        assert (
            self._rate(result, "Hostname TLD Alt.")
            > self._rate(result, "Host. Subdomain Alt.")
        )

    def test_sni_strategies_mirror_hostname(self, result):
        sni = self._rate(result, "SNI TLD Alt.")
        host = self._rate(result, "Hostname TLD Alt.")
        assert abs(sni - host) < 20

    def test_tls_versions_and_ciphers_rarely_evade(self, result):
        assert self._rate(result, "CipherSuite Alt.") < 10
        assert self._rate(result, "Client Certificate Alt.") == 0.0
        assert self._rate(result, "Min Version Alt.") < 15

    def test_method_evasion_ladder(self, result):
        # Paper §6.3: POST 1.76% < PUT 21.63% < PATCH 82.15% < empty 92.01%.
        assert result.extra["post_evasion_pct"] < result.extra["put_evasion_pct"] + 1
        assert result.extra["put_evasion_pct"] < result.extra["patch_evasion_pct"]
        assert result.extra["patch_evasion_pct"] <= result.extra["empty_method_evasion_pct"]

    def test_trailing_pads_evade_more_than_leading(self, result):
        assert (
            result.extra["trailing_pad_pct"]
            > result.extra["leading_pad_pct"]
        )


class TestSec43:
    def test_quote_statistics_shape(self, campaigns):
        result = sec43_quotes.run(campaigns=campaigns)
        assert 30 <= result.extra["rfc792_pct"] <= 90
        assert 5 <= result.extra["tos_changed_pct"] <= 60
        assert result.extra["ip_flags_changed"] <= 6
