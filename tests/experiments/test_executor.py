"""Parallel executor: bit-identity with serial runs, crash surfacing."""

import os
from pathlib import Path

import pytest

from ..helpers_golden import digest_dir
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.experiments.executor import (
    CampaignExecutor,
    ExecutorError,
    CRASH_ENV,
    CRASH_UNIT_ENV,
    FuzzUnit,
    TraceUnit,
    unit_seed,
    unit_work_key,
)
from repro.geo.countries import WorldSpec, build_world
from repro.persist import save_campaign

# Small but non-trivial: enough endpoints that every unit kind (remote,
# in-country, fuzz) is exercised, small enough that three full runs per
# parameter combination stay fast.
_CONFIG = CampaignConfig(repetitions=2, max_endpoints=4, fuzz_max_endpoints=2)


def _campaign_digest(tmp_path: Path, country: str, seed: int, workers, tag: str):
    """Run a campaign and hash its full serialized form (the canonical
    digest: meta.json's environment section describes execution shape,
    not measurement content, so serial and parallel runs may differ
    there by design)."""
    world = build_world(country, seed=seed, scale=0.35)
    campaign = run_campaign(world, _CONFIG, workers=workers)
    out = tmp_path / tag
    save_campaign(campaign, str(out))
    return digest_dir(out), campaign


@pytest.mark.parametrize("country", ["AZ", "KZ"])
@pytest.mark.parametrize("seed", [7, 99])
def test_parallel_runs_bit_identical_to_serial(tmp_path, country, seed):
    serial, campaign = _campaign_digest(tmp_path, country, seed, None, "serial")
    one, _ = _campaign_digest(tmp_path, country, seed, 1, "w1")
    four, _ = _campaign_digest(tmp_path, country, seed, 4, "w4")
    assert serial == one == four
    # The runs measured something real, not vacuously-equal emptiness.
    assert campaign.remote_results
    assert campaign.blocked_remote()


def test_fuzz_target_hops_only_for_fuzzed_endpoints(tmp_path):
    _, campaign = _campaign_digest(tmp_path, "AZ", 7, None, "hops")
    fuzzed = {(r.endpoint_ip, r.protocol) for r in campaign.fuzz_reports}
    assert set(campaign.fuzz_target_hops) == fuzzed
    assert len(campaign.fuzz_reports) <= _CONFIG.fuzz_max_endpoints
    # fuzz_weights must therefore cover exactly the fuzzed endpoints.
    assert set(campaign.fuzz_weights()) == fuzzed


def _identity_report(country, seed, workers, fault_plan=None):
    from repro.telemetry import Telemetry

    world = build_world(country, seed=seed, scale=0.35)
    config = _CONFIG
    if fault_plan is not None:
        import dataclasses

        from repro.netsim.faults import FaultPlan

        config = dataclasses.replace(
            _CONFIG, fault_plan=FaultPlan.from_spec(fault_plan)
        )
    campaign = run_campaign(world, config, workers=workers, telemetry=Telemetry())
    return campaign.run_report


def test_telemetry_identity_serial_vs_parallel():
    # The observability correctness oracle: serial and parallel runs
    # must do byte-identical *work* (counters, virtual-clock spans,
    # events), not just produce identical results.
    serial = _identity_report("KZ", 7, None)
    parallel = _identity_report("KZ", 7, 4)
    assert serial.identity_json() == parallel.identity_json()
    # Real measurement activity was counted, not vacuous emptiness.
    assert serial.counters["centrace.measurements"] > 0
    assert serial.counters["sim.client_packets"] > 0
    assert serial.spans["campaign.traces"]["virtual_seconds"] > 0


def test_telemetry_identity_under_fault_plan():
    # Fault draws are part of the identity contract too: the faults.*
    # ground-truth tallies must match between execution modes.
    serial = _identity_report("AZ", 7, None, fault_plan="lossy")
    parallel = _identity_report("AZ", 7, 2, fault_plan="lossy")
    assert serial.identity_json() == parallel.identity_json()
    assert any(name.startswith("faults.") for name in serial.counters)


def test_telemetry_wall_section_reflects_workers():
    report = _identity_report("AZ", 7, 2)
    stages = report.wall["stages"]
    assert stages["traces"]["units"] > 0
    # Unit wall latency and shard balance are recorded per stage.
    assert stages["traces"]["unit_seconds"]["total"] > 0
    assert sum(stages["traces"]["units_by_worker"].values()) == (
        stages["traces"]["units"]
    )


def test_default_run_has_no_report(tmp_path):
    _, campaign = _campaign_digest(tmp_path, "AZ", 7, None, "noreport")
    assert campaign.run_report is None


def test_worker_crash_surfaces_clearly(monkeypatch):
    monkeypatch.setenv(CRASH_ENV, "1")
    world = build_world("AZ", seed=7, scale=0.35)
    units = [TraceUnit("remote", world.endpoints[0].ip, "example.com", "http")]
    with CampaignExecutor(world, repetitions=2, workers=2) as executor:
        with pytest.raises(ExecutorError, match="worker process died"):
            executor.run_traces(units)


def test_worker_crash_mid_unit_fails_fast_with_cause(monkeypatch):
    """A worker that hard-exits while EXECUTING a unit (after a healthy
    pool init) must fail that unit with a BrokenProcessPool-wrapped
    ExecutorError — never hang the campaign awaiting a dead process."""
    world = build_world("AZ", seed=7, scale=0.35)
    unit = TraceUnit("remote", world.endpoints[0].ip, "example.com", "http")
    monkeypatch.setenv(
        CRASH_UNIT_ENV, "|".join(str(part) for part in unit.key)
    )
    with CampaignExecutor(world, repetitions=2, workers=2) as executor:
        with pytest.raises(ExecutorError, match="worker process died") as info:
            executor.run_unit("trace", unit)
    from concurrent.futures.process import BrokenProcessPool

    assert isinstance(info.value.__cause__, BrokenProcessPool)
    # A fresh executor (rebuilt pool) runs unaffected units fine — the
    # retry-or-report path the service takes.
    healthy = TraceUnit(
        "remote", world.endpoints[1].ip, "example.com", "http"
    )
    with CampaignExecutor(world, repetitions=2, workers=2) as executor:
        result, _ = executor.run_unit("trace", healthy)
    assert result.endpoint_ip == healthy.endpoint_ip


def test_run_unit_matches_batch_path(tmp_path):
    """run_unit (the service's entry point) returns the same results as
    the batch run_traces/run_fuzz path, serial and parallel."""
    world = build_world("AZ", seed=7, scale=0.35)
    units = [
        TraceUnit("remote", endpoint.ip, world.test_domains[0], "http")
        for endpoint in world.endpoints[:2]
    ]
    with CampaignExecutor(world, repetitions=2) as executor:
        batch = executor.run_traces(units)
        singles = [executor.run_unit("trace", unit)[0] for unit in units]
    for via_batch, via_unit in zip(batch, singles):
        assert via_batch.__dict__.keys() == via_unit.__dict__.keys()
        assert via_batch.blocked == via_unit.blocked
        assert via_batch.blocking_type == via_unit.blocking_type
        assert via_batch.control_hops == via_unit.control_hops
    with pytest.raises(ExecutorError, match="unknown work-unit kind"):
        with CampaignExecutor(world, repetitions=2) as executor:
            executor.run_unit("banner", units[0])


def test_unit_work_key_is_pure_content():
    trace = TraceUnit("remote", "1.2.3.4", "x.example", "http")
    same = TraceUnit("remote", "1.2.3.4", "x.example", "http")
    fuzz = FuzzUnit("1.2.3.4", "x.example", "http")
    assert unit_work_key("trace", trace, 2) == unit_work_key("trace", same, 2)
    # Kind and repetitions are part of the content.
    assert unit_work_key("trace", trace, 2) != unit_work_key("trace", trace, 3)
    assert unit_work_key("fuzz", fuzz, 2) != unit_work_key("trace", trace, 2)


def test_handbuilt_world_rejects_parallel():
    world = build_world("AZ", seed=7, scale=0.35)
    world.spec = None  # simulate a hand-assembled StudyWorld
    with pytest.raises(ExecutorError, match="world.spec"):
        CampaignExecutor(world, workers=2)


def test_world_spec_round_trip():
    world = build_world("KZ", seed=11, scale=0.35)
    assert world.spec == WorldSpec(country="KZ", seed=11, scale=0.35)
    replica = world.spec.build()
    assert [e.ip for e in replica.endpoints] == [e.ip for e in world.endpoints]
    assert replica.sim.seed == world.sim.seed


def test_unit_seed_is_content_based():
    key = ("remote", "10.0.0.1", "example.com", "http")
    assert unit_seed(7, "trace", key) == unit_seed(7, "trace", key)
    assert unit_seed(7, "trace", key) != unit_seed(8, "trace", key)
    assert unit_seed(7, "trace", key) != unit_seed(7, "fuzz", key)
    other = ("remote", "10.0.0.2", "example.com", "http")
    assert unit_seed(7, "trace", key) != unit_seed(7, "trace", other)
