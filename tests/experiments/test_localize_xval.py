"""Cross-validation harness: ground truth, scoring, the accuracy gate
the CI smoke job enforces, and method agreement."""

import pytest

from repro.experiments.localize_xval import (
    link_index_map,
    placement_labels,
    run_cross_validation,
    tomography_world,
)
from repro.localize import (
    METHOD_INCONSISTENCY,
    METHOD_TOMOGRAPHY,
    METHOD_TTL,
)

#: The committed floor the CI localize-smoke job gates on: churn
#: tomography must localize at least 80% of placements to within one
#: link of ground truth without a single TTL-limited probe (the sweep
#: currently scores 100%; the floor leaves headroom for future world
#: tweaks, not for regressions).
ACCURACY_FLOOR = 0.8


@pytest.fixture(scope="module")
def report():
    return run_cross_validation()


class TestPlacementWorlds:
    def test_every_placement_builds_with_ground_truth(self):
        for placement in placement_labels():
            world = tomography_world(placement)
            assert world.notes["placement"] == placement
            true_link = world.notes["true_link"]
            positions = link_index_map(world)
            assert positions[true_link] == world.notes["true_index"]

    def test_device_sits_on_exactly_the_true_link(self):
        world = tomography_world("b1>n")
        device = world.notes["device"]
        true_link = world.notes["true_link"]
        client = world.remote_client
        seen = set()
        for endpoint in world.endpoints:
            route = world.topology.route_between(client.ip, endpoint.ip)
            for path, _ in route.enumerate_paths():
                links = path.links(client.name)
                for hop, link in zip(path.hops, links):
                    for dev in hop.link_devices:
                        if dev.name == device:
                            seen.add(link)
        assert seen == {true_link}

    def test_worlds_are_deterministic(self):
        a = tomography_world("a1>m", seed=3)
        b = tomography_world("a1>m", seed=3)
        assert a.notes == b.notes
        assert [e.ip for e in a.endpoints] == [e.ip for e in b.endpoints]


class TestCrossValidation:
    def test_tomography_meets_committed_floor(self, report):
        assert report.accuracy(METHOD_TOMOGRAPHY) >= ACCURACY_FLOOR

    def test_tomography_always_contains_true_link(self, report):
        rows = [r for r in report.rows if r.method == METHOD_TOMOGRAPHY]
        assert len(rows) == len(placement_labels())
        assert all(r.exact_hit for r in rows)

    def test_all_methods_scored_per_placement(self, report):
        methods = set(report.methods())
        assert methods == {
            METHOD_TOMOGRAPHY,
            METHOD_INCONSISTENCY,
            METHOD_TTL,
        }
        for method in methods:
            assert (
                len([r for r in report.rows if r.method == method])
                == len(placement_labels())
            )

    def test_ttl_agreement_reported(self, report):
        # The paper-method column: where both TTL probing and
        # tomography speak, their claims overlap on most targets.
        key = "|".join(sorted((METHOD_TTL, METHOD_TOMOGRAPHY)))
        agreeing, comparable = report.agreement[key]
        assert comparable > 0
        assert agreeing > 0

    def test_report_round_trips_and_renders(self, report):
        data = report.to_dict()
        assert data["methods"][METHOD_TOMOGRAPHY]["accuracy"] >= ACCURACY_FLOOR
        assert len(data["rows"]) == len(report.rows)
        text = report.render()
        assert "tomography" in text and "agreement" in text

    def test_carries_raw_verdicts_and_evidence(self, report):
        assert report.verdicts and report.evidence
        assert {v.method for v in report.verdicts} == set(report.methods())

    def test_deterministic_given_seed(self):
        subset = ["i0>a1", "t1>ep1"]
        first = run_cross_validation(placements=subset, run_ttl=False)
        second = run_cross_validation(placements=subset, run_ttl=False)
        assert first.to_dict() == second.to_dict()


class TestTelemetry:
    def test_localize_names_emitted_and_registered(self):
        from repro.telemetry import Telemetry
        from repro.telemetry_registry import (
            COUNTERS,
            EVENTS,
            SPANS,
            render_registry,
        )

        telemetry = Telemetry()
        run_cross_validation(
            placements=["client>i0"], run_ttl=False, telemetry=telemetry
        )
        for name in (
            "localize.probes",
            "localize.evidence_records",
            "localize.blocked_evidence",
            "localize.verdicts",
        ):
            assert telemetry.counters[name] > 0, name
            assert name in COUNTERS
        snapshot = telemetry.snapshot()
        assert "localize.xval" in snapshot["wall_spans"]
        assert "localize.xval" in SPANS
        assert "localize.collect" in snapshot["spans"]
        assert "localize.collect" in SPANS
        assert any(
            e["kind"] == "localize.placement" for e in telemetry.events
        )
        assert "localize.placement" in EVENTS
        rendered = render_registry()
        assert "localize.probes" in rendered
