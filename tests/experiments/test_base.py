"""The ExperimentResult rendering helpers."""

from repro.experiments.base import ExperimentResult, percent


class TestRender:
    def test_renders_table(self):
        result = ExperimentResult(
            experiment_id="x",
            title="Test table",
            headers=["A", "BB"],
            rows=[(1, "long-value"), (22, "v")],
            notes=["a note"],
        )
        text = result.render()
        lines = text.splitlines()
        assert lines[0] == "== x: Test table =="
        assert "A" in lines[1] and "BB" in lines[1]
        assert "note: a note" in text

    def test_column_widths_fit_longest_cell(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            headers=["H"],
            rows=[("wide-cell-content",)],
        )
        header_line = result.render().splitlines()[1]
        assert len(header_line) >= len("wide-cell-content")

    def test_headerless_result(self):
        result = ExperimentResult(experiment_id="x", title="t")
        assert result.render() == "== x: t =="

    def test_row_dict(self):
        result = ExperimentResult(
            experiment_id="x", title="t", headers=["k", "v"],
            rows=[("a", 1), ("b", 2)],
        )
        assert result.row_dict()["b"] == ("b", 2)


class TestPercent:
    def test_normal(self):
        assert percent(1, 4) == 25.0

    def test_zero_denominator(self):
        assert percent(3, 0) == 0.0
