"""Campaign orchestration helpers."""

import pytest

from repro.experiments.campaign import (
    CampaignConfig,
    campaign_cache_key,
    clear_campaign_cache,
    get_campaign,
    run_campaign,
)
from repro.geo.countries import build_az_world


@pytest.fixture(scope="module")
def az_campaign():
    return run_campaign(build_az_world(), CampaignConfig(repetitions=2))


class TestViews:
    def test_blocked_subsets(self, az_campaign):
        blocked = az_campaign.blocked_remote()
        assert blocked
        assert all(r.blocked and r.valid for r in blocked)
        assert len(az_campaign.blocked_all()) >= len(blocked)

    def test_potential_device_ips_in_path_only(self, az_campaign):
        ips = az_campaign.potential_device_ips()
        assert ips
        assert len(ips) == len(set(ips))
        for ip in ips:
            assert az_campaign.world.topology.node_at(ip) is not None

    def test_results_by_endpoint_partition(self, az_campaign):
        grouped = az_campaign.results_by_endpoint()
        total = sum(len(v) for v in grouped.values())
        assert total == len(az_campaign.remote_results)

    def test_fuzz_weights_cover_targets(self, az_campaign):
        weights = az_campaign.fuzz_weights()
        assert weights
        for report in az_campaign.fuzz_reports:
            assert (report.endpoint_ip, report.protocol) in weights
        # The state device carries most of AZ's blocked measurements.
        assert max(weights.values()) >= 20

    def test_endpoint_features_only_for_blocked(self, az_campaign):
        features = az_campaign.endpoint_features()
        blocked_ips = {r.endpoint_ip for r in az_campaign.blocked_remote()}
        assert {f.endpoint_ip for f in features} <= blocked_ips

    def test_fuzz_reports_propagate_to_sibling_endpoints(self, az_campaign):
        features = az_campaign.endpoint_features()
        import math

        with_fuzz = [
            f
            for f in features
            if not math.isnan(f.values.get("Get Word Alt.", float("nan")))
        ]
        # Far more endpoints carry fuzz features than were fuzzed.
        assert len(with_fuzz) > len(az_campaign.fuzz_reports) / 2


class TestConfig:
    def test_max_endpoints_cap(self):
        campaign = run_campaign(
            build_az_world(),
            CampaignConfig(repetitions=2, max_endpoints=3, run_fuzz=False,
                           run_probe=False),
        )
        endpoints_measured = {r.endpoint_ip for r in campaign.remote_results}
        assert len(endpoints_measured) == 3
        assert campaign.fuzz_reports == []
        assert campaign.probe_reports == {}

    def test_cache_round_trip(self):
        clear_campaign_cache()
        first = get_campaign("AZ", scale=0.2, repetitions=2)
        second = get_campaign("AZ", scale=0.2, repetitions=2)
        assert first is second
        different = get_campaign("AZ", scale=0.25, repetitions=2)
        assert different is not first
        clear_campaign_cache()

    def test_cache_key_covers_every_config_field(self):
        """Regression guard for the silent-aliasing bug: adding a field
        to CampaignConfig without keying it made get_campaign return
        stale campaigns. The key is now derived from
        dataclasses.fields(), so flipping ANY field — including ones
        added after this test was written — must change the key."""
        import dataclasses

        from repro.netsim.faults import FaultPlan

        config = CampaignConfig()
        base = campaign_cache_key("AZ", 0.35, 7, config)
        assert len(base) == 3 + len(dataclasses.fields(CampaignConfig))
        for field in dataclasses.fields(CampaignConfig):
            value = getattr(config, field.name)
            if isinstance(value, bool):
                other = not value
            elif isinstance(value, int):
                other = value + 1
            elif isinstance(value, tuple):
                other = value[:-1]
            elif value is None and field.name == "fault_plan":
                other = FaultPlan.from_spec("lossy")
            elif value is None:
                other = 7
            else:
                raise AssertionError(
                    f"CampaignConfig.{field.name} has a type this test "
                    "cannot vary — extend the test AND make sure the "
                    "field stays hashable so it can live in the cache key"
                )
            varied = dataclasses.replace(config, **{field.name: other})
            assert campaign_cache_key("AZ", 0.35, 7, varied) != base, (
                f"cache key ignores CampaignConfig.{field.name}"
            )
        # World coordinates are keyed too.
        assert campaign_cache_key("KZ", 0.35, 7, config) != base
        assert campaign_cache_key("AZ", 0.5, 7, config) != base
        assert campaign_cache_key("AZ", 0.35, 8, config) != base
