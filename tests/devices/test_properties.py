"""Property-based device invariants (hypothesis)."""

import sys
from pathlib import Path

import pytest
from hypothesis import assume, given, settings, strategies as st

sys.path.insert(0, str(Path(__file__).parent.parent))

from repro.devices.actions import BlockAction, KIND_RST, build_injections
from repro.devices.base import CensorshipDevice
from repro.devices.quirks import ParserQuirks
from repro.devices.rules import (
    BlockRule,
    Blocklist,
    KIND_EXACT,
    KIND_KEYWORD,
    KIND_SUFFIX,
)
from repro.netmodel.http import HTTPRequest
from repro.netmodel.packet import tcp_packet
from repro.netmodel.tls import ClientHello
from repro.netsim.interfaces import InspectionContext

BLOCKED = "www.blocked.example"

hostnames = st.from_regex(
    r"[a-z][a-z0-9-]{0,10}(\.[a-z][a-z0-9-]{1,10}){1,3}", fullmatch=True
)


def _device(kind=KIND_SUFFIX, **kwargs) -> CensorshipDevice:
    return CensorshipDevice(
        "dev",
        blocklist=Blocklist([BlockRule(BLOCKED, kind=kind)]),
        quirks=ParserQuirks(),
        action=BlockAction(kind=KIND_RST, drop_original=True),
        **kwargs,
    )


def _ctx() -> InspectionContext:
    return InspectionContext(clock=0.0, remaining_ttl=9, link_index=2)


class TestNoFalsePositives:
    @settings(max_examples=60, deadline=None)
    @given(host=hostnames)
    def test_exact_rule_never_triggers_on_other_hosts(self, host):
        assume(host != BLOCKED)
        device = _device(kind=KIND_EXACT)
        packet = tcp_packet(
            "10.0.0.1", "10.0.0.2", 40000, 80,
            payload=HTTPRequest.normal(host).build(),
        )
        assert not device.inspect(packet, _ctx()).acted

    @settings(max_examples=60, deadline=None)
    @given(host=hostnames)
    def test_suffix_rule_triggers_exactly_on_subdomains(self, host):
        device = _device(kind=KIND_SUFFIX)
        packet = tcp_packet(
            "10.0.0.1", "10.0.0.2", 40000, 80,
            payload=HTTPRequest.normal(host).build(),
        )
        expected = host == "blocked.example" or host.endswith(".blocked.example")
        assert device.inspect(packet, _ctx()).acted == expected

    @settings(max_examples=40, deadline=None)
    @given(host=hostnames)
    def test_tls_and_http_verdicts_agree(self, host):
        """The same engine and rules must give consistent verdicts for
        the same hostname over HTTP and TLS."""
        http_device = _device(kind=KIND_SUFFIX)
        tls_device = _device(kind=KIND_SUFFIX)
        http_packet = tcp_packet(
            "10.0.0.1", "10.0.0.2", 40000, 80,
            payload=HTTPRequest.normal(host).build(),
        )
        tls_packet = tcp_packet(
            "10.0.0.1", "10.0.0.2", 40000, 443,
            payload=ClientHello.normal(host).build(),
        )
        assert (
            http_device.inspect(http_packet, _ctx()).acted
            == tls_device.inspect(tls_packet, _ctx()).acted
        )


class TestInjectionInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        seq=st.integers(min_value=0, max_value=2**31),
        ack=st.integers(min_value=0, max_value=2**31),
        payload=st.binary(min_size=1, max_size=60),
    )
    def test_injections_always_spoof_the_endpoint(self, seq, ack, payload):
        trigger = tcp_packet(
            "10.0.0.1", "10.0.0.2", 40000, 80, seq=seq, ack=ack, payload=payload
        )
        to_client, _ = build_injections(
            BlockAction(kind=KIND_RST), trigger, 9, "dev"
        )
        for packet in to_client:
            assert packet.ip.src == trigger.ip.dst
            assert packet.ip.dst == trigger.ip.src
            assert packet.injected
            assert packet.tcp.sport == trigger.tcp.dport

    @settings(max_examples=30, deadline=None)
    @given(remaining=st.integers(min_value=1, max_value=64))
    def test_ttl_copy_never_exceeds_remaining(self, remaining):
        from repro.devices.actions import InjectionSignature, TTL_COPY

        trigger = tcp_packet(
            "10.0.0.1", "10.0.0.2", 40000, 80, payload=b"x"
        )
        action = BlockAction(
            kind=KIND_RST, signature=InjectionSignature(ttl_mode=TTL_COPY)
        )
        to_client, _ = build_injections(action, trigger, remaining, "dev")
        assert to_client[0].ip.ttl == remaining
