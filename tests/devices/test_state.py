"""Residual censorship and per-flow injection limits."""

from hypothesis import given, strategies as st

from repro.devices.state import (
    FlowInjectionCounter,
    RESIDUAL_3TUPLE,
    RESIDUAL_HOSTS,
    RESIDUAL_OFF,
    ResidualTracker,
)
from repro.netmodel.ip import FlowKey

FLOW = FlowKey("10.0.0.1", "10.0.0.2", 40000, 80)


class TestResidualTracker:
    def test_off_mode_never_punishes(self):
        tracker = ResidualTracker(mode=RESIDUAL_OFF)
        tracker.punish(FLOW, clock=0.0)
        assert not tracker.is_punished(FLOW, clock=1.0)

    def test_punishment_expires(self):
        tracker = ResidualTracker(mode=RESIDUAL_3TUPLE, duration=60.0)
        tracker.punish(FLOW, clock=0.0)
        assert tracker.is_punished(FLOW, clock=59.9)
        assert not tracker.is_punished(FLOW, clock=60.0)

    def test_3tuple_ignores_source_port(self):
        tracker = ResidualTracker(mode=RESIDUAL_3TUPLE, duration=60.0)
        tracker.punish(FLOW, clock=0.0)
        new_port = FlowKey("10.0.0.1", "10.0.0.2", 55555, 80)
        assert tracker.is_punished(new_port, clock=1.0)

    def test_3tuple_distinguishes_destination_port(self):
        tracker = ResidualTracker(mode=RESIDUAL_3TUPLE, duration=60.0)
        tracker.punish(FLOW, clock=0.0)
        other_service = FlowKey("10.0.0.1", "10.0.0.2", 40000, 443)
        assert not tracker.is_punished(other_service, clock=1.0)

    def test_hosts_mode_covers_all_ports(self):
        tracker = ResidualTracker(mode=RESIDUAL_HOSTS, duration=60.0)
        tracker.punish(FLOW, clock=0.0)
        other_service = FlowKey("10.0.0.1", "10.0.0.2", 40000, 443)
        assert tracker.is_punished(other_service, clock=1.0)

    def test_other_client_unaffected(self):
        tracker = ResidualTracker(mode=RESIDUAL_3TUPLE, duration=60.0)
        tracker.punish(FLOW, clock=0.0)
        other = FlowKey("10.0.0.9", "10.0.0.2", 40000, 80)
        assert not tracker.is_punished(other, clock=1.0)

    def test_expired_entries_cleaned_up(self):
        tracker = ResidualTracker(mode=RESIDUAL_3TUPLE, duration=10.0)
        tracker.punish(FLOW, clock=0.0)
        tracker.is_punished(FLOW, clock=100.0)
        assert tracker.active_count(clock=100.0) == 0

    @given(duration=st.floats(min_value=1.0, max_value=1000.0))
    def test_punished_strictly_within_duration(self, duration):
        tracker = ResidualTracker(mode=RESIDUAL_HOSTS, duration=duration)
        tracker.punish(FLOW, clock=0.0)
        assert tracker.is_punished(FLOW, clock=duration / 2)
        assert not tracker.is_punished(FLOW, clock=duration + 0.001)


class TestFlowInjectionCounter:
    def test_unlimited_by_default(self):
        counter = FlowInjectionCounter()
        for _ in range(100):
            assert counter.may_inject(FLOW)
            counter.record(FLOW)

    def test_limit_enforced(self):
        counter = FlowInjectionCounter(limit=2)
        assert counter.may_inject(FLOW)
        counter.record(FLOW)
        counter.record(FLOW)
        assert not counter.may_inject(FLOW)

    def test_limit_is_per_flow(self):
        counter = FlowInjectionCounter(limit=1)
        counter.record(FLOW)
        other = FlowKey("10.0.0.1", "10.0.0.2", 41000, 80)
        assert counter.may_inject(other)

    def test_direction_independent(self):
        counter = FlowInjectionCounter(limit=1)
        counter.record(FLOW)
        assert not counter.may_inject(FLOW.reversed())

    def test_reset_flow(self):
        counter = FlowInjectionCounter(limit=1)
        counter.record(FLOW)
        counter.reset_flow(FLOW)
        assert counter.may_inject(FLOW)
