"""Vendor catalog integrity and distinctive per-vendor behaviour."""

import pytest

from repro.devices.actions import KIND_BLOCKPAGE, KIND_DROP, KIND_RST, TTL_COPY
from repro.devices.vendors import (
    ALL_PROFILES,
    BY_DPI,
    CISCO,
    FORTINET,
    KERIO,
    LABELED_PROFILES,
    MIKROTIK,
    PALO_ALTO,
    TSPU_TTLCOPY,
    make_device,
)
from repro.netmodel.http import HTTPRequest
from repro.netmodel.packet import tcp_packet
from repro.netsim.interfaces import InspectionContext

BLOCKED = "www.blocked.example"


def _inspect(device, payload: bytes):
    packet = tcp_packet("10.0.0.1", "10.0.0.2", 40000, 80, payload=payload)
    return device.inspect(
        packet, InspectionContext(clock=0, remaining_ttl=9, link_index=2)
    )


class TestCatalog:
    def test_all_profiles_buildable(self):
        for key, profile in ALL_PROFILES.items():
            device = make_device(profile, f"dev-{key}", [BLOCKED])
            assert device.vendor == profile.name

    def test_labeled_profiles_have_names(self):
        assert all(p.name for p in LABELED_PROFILES.values())

    def test_unlabeled_profiles_have_no_management_plane(self):
        for key, profile in ALL_PROFILES.items():
            if profile.name is None:
                assert not profile.has_management_plane

    def test_labeled_profiles_expose_services(self):
        for key, profile in LABELED_PROFILES.items():
            assert profile.management_services(), key

    def test_observable_behaviour_distinct_per_vendor(self):
        # Droppers share the (vacuous) injection signature but must
        # still be told apart by their parsing quirks or rule style —
        # that's what makes the clustering work (§7.4).
        fingerprints = {
            key: (
                profile.quirks,
                profile.action_http.kind,
                profile.action_tls.kind,
                profile.action_http.signature,
                profile.action_tls.signature,
                profile.rule_kind,
            )
            for key, profile in LABELED_PROFILES.items()
        }
        assert len(set(fingerprints.values())) == len(fingerprints)

    def test_injecting_vendors_have_distinct_signatures(self):
        injecting = {
            key: (profile.action_http.signature, profile.action_tls.signature)
            for key, profile in LABELED_PROFILES.items()
            if profile.action_http.is_injecting() or profile.action_tls.is_injecting()
        }
        assert len(set(injecting.values())) == len(injecting)


class TestVendorParsingDifferences:
    def test_fortinet_blockpages_http(self):
        device = make_device(FORTINET, "f", [BLOCKED])
        verdict = _inspect(device, HTTPRequest.normal(BLOCKED).build())
        payloads = [p.tcp.payload for p in verdict.inject_to_client]
        assert any(b"FortiGuard" in p for p in payloads)

    def test_fortinet_tls_resets_instead(self):
        from repro.netmodel.tls import ClientHello

        device = make_device(FORTINET, "f", [BLOCKED])
        verdict = _inspect(device, ClientHello.normal(BLOCKED).build())
        assert verdict.inject_to_client
        assert all(not p.tcp.payload for p in verdict.inject_to_client)

    def test_mikrotik_only_triggers_on_get(self):
        device = make_device(MIKROTIK, "m", [BLOCKED])
        assert _inspect(device, HTTPRequest.normal(BLOCKED).build()).acted
        post = HTTPRequest(host=BLOCKED, method="POST").build()
        assert not _inspect(device, post).acted

    def test_cisco_triggers_on_patch_but_fortinet_does_not(self):
        patch = HTTPRequest(host=BLOCKED, method="PATCH").build()
        cisco = make_device(CISCO, "c", [BLOCKED])
        fortinet = make_device(FORTINET, "f", [BLOCKED])
        assert _inspect(cisco, patch).acted
        assert not _inspect(fortinet, patch).acted

    def test_paloalto_keyword_engine_resists_host_word_tricks(self):
        device = make_device(PALO_ALTO, "p", [BLOCKED])
        mangled = HTTPRequest(host=BLOCKED, host_word="XXXX").build()
        assert _inspect(device, mangled).acted

    def test_kerio_validates_http_version(self):
        device = make_device(KERIO, "k", [BLOCKED])
        invalid = HTTPRequest(host=BLOCKED, http_word="HTTP/9").build()
        assert not _inspect(device, invalid).acted

    def test_tspu_ttlcopy_copies_remaining_ttl(self):
        device = make_device(TSPU_TTLCOPY, "t", [BLOCKED])
        packet = tcp_packet(
            "10.0.0.1", "10.0.0.2", 40000, 80,
            payload=HTTPRequest.normal(BLOCKED).build(),
        )
        verdict = device.inspect(
            packet, InspectionContext(clock=0, remaining_ttl=5, link_index=2)
        )
        assert verdict.inject_to_client[0].ip.ttl == 5

    def test_by_dpi_is_onpath_triple_rst(self):
        device = make_device(BY_DPI, "b", [BLOCKED])
        assert not device.in_path
        verdict = _inspect(device, HTTPRequest.normal(BLOCKED).build())
        assert len(verdict.inject_to_client) == 3
        assert not verdict.drop


class TestMakeDevice:
    def test_url_scope_blocks_only_homepage(self):
        device = make_device(CISCO, "c", [BLOCKED], url_scope=True)
        home = HTTPRequest(host=BLOCKED, path="/").build()
        other = HTTPRequest(host=BLOCKED, path="/z").build()
        assert _inspect(device, home).acted
        assert not _inspect(device, other).acted

    def test_rule_kinds_cycle_per_domain(self):
        device = make_device(
            FORTINET,
            "f",
            ["a.example", "b.example"],
            rule_kinds=("exact", "suffix"),
        )
        kinds = [rule.kind for rule in device.blocklist.rules]
        assert kinds == ["exact", "suffix"]

    def test_rule_kind_override(self):
        device = make_device(FORTINET, "f", [BLOCKED], rule_kind="exact")
        assert device.blocklist.rules[0].kind == "exact"
