"""DPI parser quirks: what fuzzed payloads each engine flavour sees."""

import pytest

from repro.devices.quirks import (
    HOST_FROM_HEADER,
    HOST_SUBSTRING,
    ParserQuirks,
    VERSION_ANY,
    VERSION_SLASH,
    VERSION_VALID,
    extract_http_host,
    extract_tls_sni,
    path_matches,
    SCOPE_URL,
)
from repro.netmodel.http import HTTPRequest
from repro.netmodel.tls import ClientHello, VERSION_TLS10, VERSION_TLS13

HOST = "www.blocked.example"


def _build(**kwargs) -> bytes:
    return HTTPRequest(host=HOST, **kwargs).build()


class TestMethodHandling:
    quirks = ParserQuirks(trigger_methods=frozenset({"GET", "POST"}))

    def test_get_inspected(self):
        host, path = extract_http_host(_build(), self.quirks)
        assert host == HOST and path == "/"

    def test_untracked_method_evades(self):
        assert extract_http_host(_build(method="PATCH"), self.quirks) == (None, None)

    def test_truncated_method_evades(self):
        assert extract_http_host(_build(method="GE"), self.quirks) == (None, None)

    def test_empty_method_evades(self):
        assert extract_http_host(_build(method=""), self.quirks) == (None, None)

    def test_method_case_insensitive_by_default(self):
        host, _ = extract_http_host(_build(method="GeT"), self.quirks)
        assert host == HOST

    def test_case_sensitive_engine_misses_mixed_case(self):
        strict = ParserQuirks(
            trigger_methods=frozenset({"GET"}), method_case_sensitive=True
        )
        assert extract_http_host(_build(method="GeT"), strict) == (None, None)

    def test_empty_trigger_set_inspects_everything(self):
        lax = ParserQuirks(trigger_methods=frozenset())
        host, _ = extract_http_host(_build(method="XXXX"), lax)
        assert host == HOST


class TestVersionHandling:
    def test_slash_rule_accepts_invalid_but_slashed(self):
        quirks = ParserQuirks(version_rule=VERSION_SLASH)
        host, _ = extract_http_host(_build(http_word="HTTP/9"), quirks)
        assert host == HOST  # §6.3: invalid versions rarely evade

    def test_slash_rule_rejects_unslashed(self):
        quirks = ParserQuirks(version_rule=VERSION_SLASH)
        assert extract_http_host(_build(http_word="HTTP1.1"), quirks) == (None, None)

    def test_valid_rule_requires_literal_version(self):
        quirks = ParserQuirks(version_rule=VERSION_VALID)
        assert extract_http_host(_build(http_word="HTTP/9"), quirks) == (None, None)
        host, _ = extract_http_host(_build(http_word="HTTP/1.0"), quirks)
        assert host == HOST

    def test_any_rule_accepts_garbage(self):
        quirks = ParserQuirks(version_rule=VERSION_ANY)
        host, _ = extract_http_host(_build(http_word="ZZZZ"), quirks)
        assert host == HOST


class TestTokenization:
    def test_strict_engine_needs_exactly_three_tokens(self):
        quirks = ParserQuirks(require_three_tokens=True)
        assert extract_http_host(_build(http_word="HTTP/ 1.1"), quirks) == (None, None)

    def test_lenient_engine_handles_extra_spaces(self):
        quirks = ParserQuirks(require_three_tokens=False)
        host, _ = extract_http_host(_build(http_word="HTTP/ 1.1"), quirks)
        assert host == HOST

    def test_cr_only_delimiter_unparseable_by_default(self):
        quirks = ParserQuirks()
        assert extract_http_host(_build(line_delimiter="\r"), quirks) == (None, None)

    def test_cr_acceptor_still_parses(self):
        quirks = ParserQuirks(accepted_delimiters=("\r\n", "\n", "\r"))
        host, _ = extract_http_host(_build(line_delimiter="\r"), quirks)
        assert host == HOST


class TestHostExtraction:
    def test_header_engine_misses_renamed_host_word(self):
        quirks = ParserQuirks(host_extraction=HOST_FROM_HEADER)
        raw = _build(host_word="HostHeader")
        assert extract_http_host(raw, quirks) == (None, None)

    def test_header_engine_case_insensitive_host_word(self):
        quirks = ParserQuirks()
        host, _ = extract_http_host(_build(host_word="HoST"), quirks)
        assert host == HOST

    def test_case_sensitive_host_word_misses_mixed_case(self):
        quirks = ParserQuirks(host_word_case_sensitive=True)
        assert extract_http_host(_build(host_word="HoST"), quirks) == (None, None)

    def test_missing_colon_misses_by_default(self):
        quirks = ParserQuirks()
        raw = _build(host_separator=" ")
        assert extract_http_host(raw, quirks) == (None, None)

    def test_colon_tolerant_engine_recovers(self):
        quirks = ParserQuirks(require_host_colon=False)
        host, _ = extract_http_host(_build(host_separator=" "), quirks)
        assert host == HOST

    def test_substring_engine_sees_whole_payload(self):
        quirks = ParserQuirks(host_extraction=HOST_SUBSTRING)
        raw = _build(method="ZZZZ", http_word="@@@", host_word="Nope")
        text, path = extract_http_host(raw, quirks)
        assert HOST in text
        assert path == "/"


class TestPathScope:
    def test_domain_scope_matches_any_path(self):
        quirks = ParserQuirks()
        assert path_matches("/whatever", ("/",), quirks)

    def test_url_scope_matches_only_rule_paths(self):
        quirks = ParserQuirks(path_scope=SCOPE_URL)
        assert path_matches("/", ("/",), quirks)
        assert not path_matches("/z", ("/",), quirks)


class TestTLSQuirks:
    def test_sni_extracted(self):
        quirks = ParserQuirks()
        assert extract_tls_sni(ClientHello.normal(HOST).build(), quirks) == HOST

    def test_missing_sni_evades(self):
        quirks = ParserQuirks()
        raw = ClientHello(server_name=HOST, include_sni=False).build()
        assert extract_tls_sni(raw, quirks) is None

    def test_fragile_cipher_breaks_engine(self):
        quirks = ParserQuirks(fragile_ciphers=frozenset({"TLS_RSA_WITH_RC4_128_SHA"}))
        raw = ClientHello(
            server_name=HOST, cipher_suites=["TLS_RSA_WITH_RC4_128_SHA"]
        ).build()
        assert extract_tls_sni(raw, quirks) is None

    def test_robust_cipher_still_inspected(self):
        quirks = ParserQuirks(fragile_ciphers=frozenset({"TLS_RSA_WITH_RC4_128_SHA"}))
        raw = ClientHello(server_name=HOST).build()
        assert extract_tls_sni(raw, quirks) == HOST

    def test_fragile_version_only_offer_evades(self):
        quirks = ParserQuirks(fragile_tls_versions=frozenset({VERSION_TLS13}))
        raw = ClientHello(
            server_name=HOST, min_version=VERSION_TLS13, max_version=VERSION_TLS13
        ).build()
        assert extract_tls_sni(raw, quirks) is None

    def test_fragile_version_mixed_offer_still_inspected(self):
        quirks = ParserQuirks(fragile_tls_versions=frozenset({VERSION_TLS13}))
        raw = ClientHello(
            server_name=HOST, min_version=VERSION_TLS10, max_version=VERSION_TLS13
        ).build()
        assert extract_tls_sni(raw, quirks) == HOST

    def test_http_payload_not_parsed_as_tls(self):
        quirks = ParserQuirks()
        assert extract_tls_sni(_build(), quirks) is None
