"""Blocking actions and injected-packet signatures."""

import pytest

from repro.devices.actions import (
    BlockAction,
    InjectionSignature,
    IPID_CONSTANT,
    IPID_ECHO,
    IPID_SEQUENTIAL,
    IPID_ZERO,
    KIND_BLOCKPAGE,
    KIND_DROP,
    KIND_FIN,
    KIND_RST,
    TTL_COPY,
    TTL_FIXED,
    build_injections,
)
from repro.netmodel import tcp as tcpmod
from repro.netmodel.packet import tcp_packet


def _trigger(payload=b"GET / HTTP/1.1\r\nHost: x\r\n\r\n", ip_id=0x4242):
    return tcp_packet(
        "10.0.0.1", "10.0.0.2", 40000, 80, seq=100, ack=200, payload=payload, ip_id=ip_id
    )


class TestDrop:
    def test_drop_injects_nothing(self):
        to_client, to_server = build_injections(
            BlockAction(kind=KIND_DROP), _trigger(), 10, "dev"
        )
        assert to_client == [] and to_server == []


class TestRST:
    def test_rst_spoofs_endpoint_address(self):
        action = BlockAction(kind=KIND_RST)
        to_client, _ = build_injections(action, _trigger(), 10, "dev")
        packet = to_client[0]
        assert packet.ip.src == "10.0.0.2"
        assert packet.ip.dst == "10.0.0.1"
        assert packet.tcp.flags & tcpmod.RST
        assert packet.injected

    def test_rst_sequence_references_trigger(self):
        to_client, _ = build_injections(BlockAction(kind=KIND_RST), _trigger(), 10, "dev")
        packet = to_client[0]
        assert packet.tcp.seq == 200  # the trigger's ack
        assert packet.tcp.ack == 100 + len(_trigger().tcp.payload)

    def test_inject_count_multiplies(self):
        action = BlockAction(kind=KIND_RST, inject_count=3)
        to_client, _ = build_injections(action, _trigger(), 10, "dev")
        assert len(to_client) == 3
        # Successive RSTs walk the sequence space.
        assert {p.tcp.seq for p in to_client} == {200, 201, 202}

    def test_rst_to_server_spoofs_client(self):
        action = BlockAction(kind=KIND_RST, rst_to_server=True)
        _, to_server = build_injections(action, _trigger(), 10, "dev")
        assert len(to_server) == 1
        assert to_server[0].ip.src == "10.0.0.1"
        assert to_server[0].ip.dst == "10.0.0.2"


class TestFINAndBlockpage:
    def test_fin_flags(self):
        to_client, _ = build_injections(BlockAction(kind=KIND_FIN), _trigger(), 10, "dev")
        assert to_client[0].tcp.flags == tcpmod.FIN | tcpmod.ACK

    def test_blockpage_carries_html_then_fin(self):
        action = BlockAction(kind=KIND_BLOCKPAGE, blockpage_html="<html>no</html>")
        to_client, _ = build_injections(action, _trigger(), 10, "dev")
        assert len(to_client) == 2
        assert b"<html>no</html>" in to_client[0].tcp.payload
        assert b"403 Forbidden" in to_client[0].tcp.payload
        assert to_client[1].tcp.flags & tcpmod.FIN


class TestSignatures:
    def test_fixed_ttl(self):
        sig = InjectionSignature(ttl_mode=TTL_FIXED, fixed_ttl=128)
        action = BlockAction(kind=KIND_RST, signature=sig)
        to_client, _ = build_injections(action, _trigger(), 9, "dev")
        assert to_client[0].ip.ttl == 128

    def test_ttl_copy_uses_remaining_ttl(self):
        sig = InjectionSignature(ttl_mode=TTL_COPY)
        action = BlockAction(kind=KIND_RST, signature=sig)
        to_client, _ = build_injections(action, _trigger(), 4, "dev")
        assert to_client[0].ip.ttl == 4

    def test_ip_id_zero(self):
        sig = InjectionSignature(ip_id_mode=IPID_ZERO)
        to_client, _ = build_injections(
            BlockAction(kind=KIND_RST, signature=sig), _trigger(), 9, "dev"
        )
        assert to_client[0].ip.identification == 0

    def test_ip_id_constant(self):
        sig = InjectionSignature(ip_id_mode=IPID_CONSTANT, ip_id_value=0x1234)
        to_client, _ = build_injections(
            BlockAction(kind=KIND_RST, signature=sig), _trigger(), 9, "dev"
        )
        assert to_client[0].ip.identification == 0x1234

    def test_ip_id_echo(self):
        sig = InjectionSignature(ip_id_mode=IPID_ECHO)
        to_client, _ = build_injections(
            BlockAction(kind=KIND_RST, signature=sig), _trigger(ip_id=0x4242), 9, "dev"
        )
        assert to_client[0].ip.identification == 0x4242

    def test_ip_id_sequential_increments(self):
        sig = InjectionSignature(ip_id_mode=IPID_SEQUENTIAL)
        action = BlockAction(kind=KIND_RST, signature=sig)
        first, _ = build_injections(action, _trigger(), 9, "dev")
        second, _ = build_injections(action, _trigger(), 9, "dev")
        assert second[0].ip.identification == first[0].ip.identification + 1

    def test_window_and_tos_applied(self):
        sig = InjectionSignature(tcp_window=1400, tos=0x10)
        to_client, _ = build_injections(
            BlockAction(kind=KIND_RST, signature=sig), _trigger(), 9, "dev"
        )
        assert to_client[0].tcp.window == 1400
        assert to_client[0].ip.tos == 0x10

    def test_non_tcp_trigger_injects_nothing(self):
        from repro.netmodel.icmp import ICMPMessage
        from repro.netmodel.packet import icmp_packet

        trigger = icmp_packet("1.1.1.1", "2.2.2.2", ICMPMessage(11, 0))
        assert build_injections(BlockAction(kind=KIND_RST), trigger, 9, "dev") == ([], [])


class TestDnsFakeCursorReset:
    """Regression: the rotating fake-answer cursor is rewindable.

    Before the RP502 sweep the cursor was module-global with *no* reset
    hook, so with a multi-address pool (the GFW-style rotation) the
    answer a unit saw depended on how many DNS injections had run
    earlier in the same process — serial and parallel campaigns rotated
    differently.
    """

    @staticmethod
    def _dns_trigger(domain="blocked.example"):
        from repro.netmodel.dns import DNSMessage, DNSQuestion
        from repro.netmodel.packet import udp_packet

        query = DNSMessage(txid=7, questions=[DNSQuestion(domain)])
        return udp_packet(
            "10.0.0.1", "10.0.0.2", 40000, 53, payload=query.to_bytes()
        )

    def _answers(self, action, n):
        from repro.netmodel.dns import DNSMessage
        from repro.devices.actions import build_dns_injections

        out = []
        for _ in range(n):
            (forged,) = build_dns_injections(action, self._dns_trigger(), 9, "dev")
            out.append(DNSMessage.from_bytes(forged.udp.payload).answers[0].address)
        return out

    def test_reset_rewinds_rotation(self):
        from repro.devices.actions import DNSBlockAction, reset_dns_fake_cursor

        pool = ("198.18.0.1", "198.18.0.2", "198.18.0.3")
        action = DNSBlockAction(fake_addresses=pool)
        reset_dns_fake_cursor()
        first_run = self._answers(action, 4)
        assert first_run == list(pool) + [pool[0]]  # cycles in pool order
        # Without the rewind the next run would start mid-pool...
        assert self._answers(action, 1) != [pool[0]]
        # ...and with it, it is bit-identical to the first.
        reset_dns_fake_cursor()
        assert self._answers(action, 4) == first_run

    def test_prepare_unit_rewinds_cursor(self):
        """The executor's per-unit reset covers the DNS cursor too."""
        from repro.experiments.executor import prepare_unit
        from repro.geo.countries import build_kz_world

        world = build_kz_world()
        for _ in range(17):
            world.net_context.next_dns_fake_index()
        prepare_unit(world, "trace", ("endpoint", "domain"))
        assert world.net_context.next_dns_fake_index() == 0
