"""The assembled censorship device: trigger logic end to end."""

import pytest

from repro.devices.actions import BlockAction, KIND_DROP, KIND_RST
from repro.devices.base import CensorshipDevice
from repro.devices.quirks import ParserQuirks
from repro.devices.rules import Blocklist
from repro.devices.state import RESIDUAL_3TUPLE
from repro.netmodel import tcp as tcpmod
from repro.netmodel.http import HTTPRequest
from repro.netmodel.packet import tcp_packet
from repro.netmodel.tls import ClientHello
from repro.netsim.interfaces import DIRECTION_FORWARD, InspectionContext

BLOCKED = "www.blocked.example"
OK = "www.ok.example"


def _device(action=None, **kwargs) -> CensorshipDevice:
    return CensorshipDevice(
        "dev",
        blocklist=Blocklist.for_domains([BLOCKED]),
        quirks=ParserQuirks(),
        action=action or BlockAction(kind=KIND_DROP),
        **kwargs,
    )


def _ctx(clock=0.0, remaining_ttl=10) -> InspectionContext:
    return InspectionContext(
        clock=clock, remaining_ttl=remaining_ttl, link_index=3,
        direction=DIRECTION_FORWARD,
    )


def _http(domain, **kwargs):
    return tcp_packet(
        "10.0.0.1", "10.0.0.2", 40000, 80,
        payload=HTTPRequest(host=domain, **kwargs).build(),
    )


def _tls(domain):
    return tcp_packet(
        "10.0.0.1", "10.0.0.2", 40000, 443,
        payload=ClientHello.normal(domain).build(),
    )


class TestTriggering:
    def test_blocked_http_dropped(self):
        device = _device()
        verdict = device.inspect(_http(BLOCKED), _ctx())
        assert verdict.drop
        assert device.stats.triggered == 1

    def test_ok_http_passes(self):
        device = _device()
        verdict = device.inspect(_http(OK), _ctx())
        assert not verdict.acted

    def test_blocked_tls_triggers(self):
        device = _device()
        assert device.inspect(_tls(BLOCKED), _ctx()).drop

    def test_handshake_packets_pass(self):
        device = _device()
        syn = tcp_packet("10.0.0.1", "10.0.0.2", 40000, 80, flags=tcpmod.SYN)
        assert not device.inspect(syn, _ctx()).acted

    def test_injected_packets_not_reinspected(self):
        device = _device()
        packet = _http(BLOCKED)
        packet.injected = True
        assert not device.inspect(packet, _ctx()).acted

    def test_icmp_passes(self):
        from repro.netmodel.icmp import ICMPMessage
        from repro.netmodel.packet import icmp_packet

        device = _device()
        packet = icmp_packet("10.0.0.9", "10.0.0.1", ICMPMessage(11, 0))
        assert not device.inspect(packet, _ctx()).acted

    def test_evasion_counted(self):
        device = _device()
        device.inspect(_http(BLOCKED, method="XXXX"), _ctx())
        assert device.stats.evaded == 1
        assert device.stats.triggered == 0


class TestOnPathSemantics:
    def test_onpath_drop_verdict_not_set(self):
        device = _device(
            action=BlockAction(kind=KIND_RST, drop_original=True), in_path=False
        )
        verdict = device.inspect(_http(BLOCKED), _ctx())
        assert verdict.inject_to_client
        assert not verdict.drop  # on-path devices cannot drop

    def test_inpath_injector_drops_original(self):
        device = _device(
            action=BlockAction(kind=KIND_RST, drop_original=True), in_path=True
        )
        verdict = device.inspect(_http(BLOCKED), _ctx())
        assert verdict.inject_to_client and verdict.drop


class TestPerProtocolActions:
    def test_tls_action_overrides(self):
        device = CensorshipDevice(
            "dev",
            blocklist=Blocklist.for_domains([BLOCKED]),
            action=BlockAction(kind=KIND_DROP),
            action_tls=BlockAction(kind=KIND_RST),
        )
        http_verdict = device.inspect(_http(BLOCKED), _ctx())
        tls_verdict = device.inspect(_tls(BLOCKED), _ctx())
        assert http_verdict.drop and not http_verdict.inject_to_client
        assert tls_verdict.inject_to_client

    def test_tls_action_defaults_to_http_action(self):
        device = _device(action=BlockAction(kind=KIND_RST))
        assert device.action_tls.kind == KIND_RST


class TestResidual:
    def test_residual_punishes_followup_syn(self):
        device = _device(residual_mode=RESIDUAL_3TUPLE, residual_duration=60.0)
        device.inspect(_http(BLOCKED), _ctx(clock=0.0))
        syn = tcp_packet("10.0.0.1", "10.0.0.2", 41000, 80, flags=tcpmod.SYN)
        verdict = device.inspect(syn, _ctx(clock=5.0))
        assert verdict.drop
        assert device.stats.residual_hits == 1

    def test_residual_expires(self):
        device = _device(residual_mode=RESIDUAL_3TUPLE, residual_duration=60.0)
        device.inspect(_http(BLOCKED), _ctx(clock=0.0))
        syn = tcp_packet("10.0.0.1", "10.0.0.2", 41000, 80, flags=tcpmod.SYN)
        assert not device.inspect(syn, _ctx(clock=120.0)).acted

    def test_injection_limit_respected(self):
        device = _device(
            action=BlockAction(kind=KIND_RST, drop_original=False),
            injection_limit=1,
        )
        packet = _http(BLOCKED)
        first = device.inspect(packet, _ctx())
        second = device.inspect(packet, _ctx())
        assert first.inject_to_client
        assert not second.inject_to_client


class TestDirectionality:
    def test_unidirectional_device_ignores_reverse(self):
        from repro.netsim.interfaces import DIRECTION_REVERSE

        device = _device(bidirectional=False)
        ctx = InspectionContext(
            clock=0, remaining_ttl=9, link_index=1, direction=DIRECTION_REVERSE
        )
        assert not device.inspect(_http(BLOCKED), ctx).acted
