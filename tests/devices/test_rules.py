"""Blocking-rule semantics: the §6.3 wildcard behaviours."""

import pytest
from hypothesis import given, strategies as st

from repro.devices.rules import (
    BlockRule,
    Blocklist,
    KIND_EXACT,
    KIND_KEYWORD,
    KIND_PREFIX,
    KIND_SUFFIX,
    PROTO_HTTP,
    PROTO_TLS,
    registrable_domain,
    strip_tld,
)

DOMAIN = "www.blocked.example"


class TestHelpers:
    def test_registrable_domain(self):
        assert registrable_domain("www.blocked.example") == "blocked.example"
        assert registrable_domain("a.b.c.d") == "c.d"
        assert registrable_domain("localhost") == "localhost"

    def test_strip_tld(self):
        assert strip_tld("www.blocked.example") == "www.blocked"
        assert strip_tld("single") == "single"


class TestExactRule:
    rule = BlockRule(DOMAIN, kind=KIND_EXACT)

    def test_matches_exact(self):
        assert self.rule.matches_host(DOMAIN)

    def test_case_insensitive(self):
        assert self.rule.matches_host("WWW.Blocked.Example")

    def test_leading_pad_evades(self):
        assert not self.rule.matches_host("**" + DOMAIN)

    def test_trailing_pad_evades(self):
        assert not self.rule.matches_host(DOMAIN + "*")

    def test_subdomain_evades(self):
        assert not self.rule.matches_host("m.blocked.example")

    def test_port_stripped(self):
        assert self.rule.matches_host(DOMAIN + ":8080")

    def test_trailing_dot_normalized(self):
        assert self.rule.matches_host(DOMAIN + ".")

    def test_none_and_empty(self):
        assert not self.rule.matches_host(None)
        assert not self.rule.matches_host("")


class TestSuffixRule:
    rule = BlockRule(DOMAIN, kind=KIND_SUFFIX)

    def test_matches_base_domain(self):
        assert self.rule.matches_host("blocked.example")

    def test_matches_any_subdomain(self):
        assert self.rule.matches_host("m.blocked.example")
        assert self.rule.matches_host("deep.sub.blocked.example")

    def test_leading_pad_still_blocked(self):
        # §6.3: "permutations with leading pads are mostly blocked".
        assert self.rule.matches_host("**www.blocked.example")

    def test_trailing_pad_evades(self):
        assert not self.rule.matches_host("www.blocked.example*")

    def test_tld_change_evades(self):
        assert not self.rule.matches_host("www.blocked.net")

    def test_lookalike_without_dot_evades(self):
        assert not self.rule.matches_host("notblocked.example")


class TestPrefixRule:
    rule = BlockRule(DOMAIN, kind=KIND_PREFIX)

    def test_matches_any_tld(self):
        assert self.rule.matches_host("www.blocked.net")
        assert self.rule.matches_host("www.blocked.org")

    def test_subdomain_evades(self):
        assert not self.rule.matches_host("m.blocked.example")


class TestKeywordRule:
    rule = BlockRule(DOMAIN, kind=KIND_KEYWORD)

    def test_matches_substring_anywhere(self):
        assert self.rule.matches_host("prefix-blocked-suffix.example")

    def test_matches_inside_whole_payload(self):
        payload = "get / http/1.1\r\nhost: www.blocked.example\r\n\r\n"
        assert self.rule.matches_host(payload)

    def test_unrelated_payload_passes(self):
        assert not self.rule.matches_host("host: www.ok.example")


class TestBlocklist:
    def test_protocol_scoping(self):
        rule = BlockRule(DOMAIN, kind=KIND_EXACT, protocols=(PROTO_HTTP,))
        blocklist = Blocklist([rule])
        assert blocklist.match(DOMAIN, PROTO_HTTP) is rule
        assert blocklist.match(DOMAIN, PROTO_TLS) is None

    def test_first_match_wins(self):
        first = BlockRule(DOMAIN, kind=KIND_SUFFIX)
        second = BlockRule(DOMAIN, kind=KIND_EXACT)
        blocklist = Blocklist([first, second])
        assert blocklist.match(DOMAIN, PROTO_HTTP) is first

    def test_for_domains_builder(self):
        blocklist = Blocklist.for_domains(["a.example", "b.example"])
        assert blocklist.domains() == ["a.example", "b.example"]
        assert blocklist.match("sub.a.example", PROTO_TLS) is not None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            BlockRule(DOMAIN, kind="glob")

    def test_no_match_returns_none(self):
        blocklist = Blocklist.for_domains(["a.example"])
        assert blocklist.match("z.example", PROTO_HTTP) is None
        assert blocklist.match(None, PROTO_HTTP) is None


@given(
    host=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz.-", min_size=1, max_size=40
    )
)
def test_exact_rule_only_matches_itself(host):
    rule = BlockRule(DOMAIN, kind=KIND_EXACT)
    expected = host.strip().lower().rstrip(".") == DOMAIN
    assert rule.matches_host(host) == expected


@given(sub=st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=10))
def test_suffix_rule_matches_all_subdomains(sub):
    rule = BlockRule(DOMAIN, kind=KIND_SUFFIX)
    assert rule.matches_host(f"{sub}.blocked.example")
