"""The invariant lint framework: every pass catches its fixture
violation, clean code stays clean, pragmas suppress, the JSON reporter
keeps its schema — and the real src/ tree lints clean (the tier-1
wrapper that makes CI fail on new violations without a separate job).
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools import lintkit  # noqa: E402
from tools.lintkit.__main__ import main as lintkit_main  # noqa: E402
from tools.lintkit.base import FileContext  # noqa: E402
from tools.lintkit.rules.layering import resolve_relative  # noqa: E402
from tools.lintkit.walker import load_context, module_name  # noqa: E402


def write_module(root: Path, dotted: str, source: str) -> Path:
    """Materialise ``repro.netsim.mod`` as a real package tree."""
    parts = dotted.split(".")
    directory = root
    for part in parts[:-1]:
        directory = directory / part
        directory.mkdir(exist_ok=True)
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("")
    path = directory / f"{parts[-1]}.py"
    path.write_text(source)
    return path


def lint_module(tmp_path, dotted, source, select=None):
    """Lint one synthetic module; returns the violations list."""
    write_module(tmp_path, dotted, source)
    violations, _ = lintkit.lint([tmp_path], root=tmp_path, select=select)
    return violations


def rule_ids(violations):
    return [v.rule_id for v in violations]


# ---------------------------------------------------------------------------
# RP101 wall-clock


class TestWallClock:
    def test_time_time_flagged(self, tmp_path):
        found = lint_module(
            tmp_path, "repro.mod", "import time\nx = time.time()\n",
            select=["RP101"],
        )
        assert rule_ids(found) == ["RP101"]
        assert found[0].line == 2

    def test_aliased_module_import_flagged(self, tmp_path):
        # The retired standalone determinism linter matched the literal
        # name `time` and let this walk straight past it.
        found = lint_module(
            tmp_path, "repro.mod", "import time as t\nx = t.time()\n",
            select=["RP101"],
        )
        assert rule_ids(found) == ["RP101"]
        assert "time.time()" in found[0].message

    def test_aliased_datetime_class_flagged(self, tmp_path):
        # The second half of the blind spot: aliasing the class.
        found = lint_module(
            tmp_path,
            "repro.mod",
            "from datetime import datetime as dt\nx = dt.now()\n",
            select=["RP101"],
        )
        assert rule_ids(found) == ["RP101"]

    def test_aliased_datetime_module_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.mod",
            "import datetime as d\nx = d.datetime.utcnow()\n",
            select=["RP101"],
        )
        assert rule_ids(found) == ["RP101"]

    def test_direct_from_import_alias_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.mod",
            "from time import perf_counter as pc\nx = pc()\n",
            select=["RP101"],
        )
        assert rule_ids(found) == ["RP101"]

    def test_sleep_and_strings_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.mod",
            "import time\ntime.sleep(0)\nx = 'time.time()'\n# time.time()\n",
            select=["RP101"],
        )
        assert found == []

    def test_telemetry_module_exempt(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.telemetry",
            "import time\nwall_now = time.time\nx = time.time()\n",
            select=["RP101"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RP201/RP202/RP203 RNG discipline


class TestRngDiscipline:
    def test_global_draw_flagged(self, tmp_path):
        found = lint_module(
            tmp_path, "repro.mod", "import random\nx = random.random()\n"
        )
        assert "RP201" in rule_ids(found)

    def test_aliased_global_draw_flagged(self, tmp_path):
        found = lint_module(
            tmp_path, "repro.mod", "import random as rnd\nx = rnd.choice([1])\n"
        )
        assert "RP201" in rule_ids(found)

    def test_direct_import_draw_flagged(self, tmp_path):
        found = lint_module(
            tmp_path, "repro.mod", "from random import choice\nx = choice([1])\n"
        )
        assert "RP201" in rule_ids(found)

    def test_unseeded_random_flagged(self, tmp_path):
        found = lint_module(
            tmp_path, "repro.mod", "import random\nr = random.Random()\n"
        )
        assert "RP202" in rule_ids(found)

    def test_global_seed_flagged(self, tmp_path):
        found = lint_module(
            tmp_path, "repro.mod", "import random\nrandom.seed(42)\n"
        )
        assert "RP203" in rule_ids(found)

    def test_seeded_random_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.mod",
            "import random\n"
            "r = random.Random(7)\n"
            "r2 = random.Random(r.random())\n"  # drawing from an instance is fine
            "x = r.choice([1, 2])\n",
        )
        assert found == []


# ---------------------------------------------------------------------------
# RP301/RP302 iteration order


class TestIterationOrder:
    def test_set_literal_iteration_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.netsim.mod",
            "for x in {3, 1, 2}:\n    print(x)\n",
        )
        assert "RP301" in rule_ids(found)

    def test_set_bound_name_iteration_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.core.mod",
            "s = {c for c in 'abc'}\nout = [c for c in s]\n",
        )
        assert "RP301" in rule_ids(found)

    def test_sorted_wrapper_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.analysis.mod",
            "s = set('abc')\n"
            "for x in sorted(s):\n    print(x)\n"
            "out = sorted(c for c in s)\n"  # genexp feeding sorted is pinned
            "n = len(s)\n"
            "ok = 'a' in s\n",
        )
        assert found == []

    def test_dictcomp_keys_iteration_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.experiments.mod",
            "d = {k: 1 for k in 'abc'}\nfor k in d.keys():\n    print(k)\n",
        )
        assert "RP302" in rule_ids(found)

    def test_out_of_scope_module_not_flagged(self, tmp_path):
        # geo is not a result-producing module for this pass.
        found = lint_module(
            tmp_path,
            "repro.geo.mod",
            "for x in {3, 1, 2}:\n    print(x)\n",
            select=["RP301", "RP302"],
        )
        assert found == []

    def test_reassignment_clears_tracking(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.core.mod",
            "s = {1, 2}\ns = [1, 2]\nfor x in s:\n    print(x)\n",
            select=["RP301", "RP302"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RP401/RP402 layering


class TestLayering:
    def test_netsim_importing_core_flagged(self, tmp_path):
        write_module(tmp_path, "repro.core.tool", "X = 1\n")
        found = lint_module(
            tmp_path,
            "repro.netsim.mod",
            "from repro.core.tool import X\n",
            select=["RP401"],
        )
        assert rule_ids(found) == ["RP401"]
        assert "netsim" in found[0].message

    def test_relative_import_resolved(self, tmp_path):
        # `from ...analysis import x` inside repro.netsim.sub.mod is an
        # netsim -> analysis edge even though the text never says so.
        write_module(tmp_path, "repro.analysis.stats", "X = 1\n")
        found = lint_module(
            tmp_path,
            "repro.netsim.sub.mod",
            "from ...analysis import stats\n",
            select=["RP401"],
        )
        assert rule_ids(found) == ["RP401"]

    def test_nothing_imports_cli(self, tmp_path):
        write_module(tmp_path, "repro.cli", "X = 1\n")
        found = lint_module(
            tmp_path,
            "repro.experiments.mod",
            "from repro import cli\n",
            select=["RP401"],
        )
        assert rule_ids(found) == ["RP401"]
        assert "entry point" in found[0].message

    def test_allowed_edge_clean(self, tmp_path):
        write_module(tmp_path, "repro.netmodel.ip", "X = 1\n")
        found = lint_module(
            tmp_path,
            "repro.netsim.mod",
            "from repro.netmodel.ip import X\n",
            select=["RP401"],
        )
        assert found == []

    def test_cycle_flagged(self, tmp_path):
        write_module(tmp_path, "repro.netsim.a", "from repro.netsim.b import Y\nX = 1\n")
        found = lint_module(
            tmp_path,
            "repro.netsim.b",
            "from repro.netsim.a import X\nY = 1\n",
            select=["RP402"],
        )
        assert rule_ids(found) == ["RP402"]
        assert "repro.netsim.a -> repro.netsim.b" in found[0].message or (
            "repro.netsim.b -> repro.netsim.a" in found[0].message
        )

    def test_function_local_import_breaks_cycle(self, tmp_path):
        # A function-level import is the sanctioned runtime cycle-breaker.
        write_module(
            tmp_path,
            "repro.netsim.a",
            "def f():\n    from repro.netsim.b import Y\n    return Y\nX = 1\n",
        )
        found = lint_module(
            tmp_path,
            "repro.netsim.b",
            "from repro.netsim.a import X\nY = 1\n",
            select=["RP402"],
        )
        assert found == []

    def test_service_only_importable_from_cli(self, tmp_path):
        # The job-queue front end sits above the engine: experiments
        # (or anything else engine-side) importing it inverts the DAG.
        write_module(tmp_path, "repro.service.queue", "X = 1\n")
        found = lint_module(
            tmp_path,
            "repro.experiments.mod",
            "from repro.service.queue import X\n",
            select=["RP401"],
        )
        assert rule_ids(found) == ["RP401"]
        assert "may only be imported by" in found[0].message

    def test_restricted_importers_bind_wildcard_layers(self, tmp_path):
        # The package root holds a "*" allowance, but RESTRICTED_IMPORTERS
        # is checked regardless of wildcards: only cli may touch service,
        # so the root must not re-export it.
        write_module(tmp_path, "repro.service.queue", "X = 1\n")
        (tmp_path / "repro" / "__init__.py").write_text(
            "from repro.service.queue import X\n"
        )
        violations, _ = lintkit.lint(
            [tmp_path], root=tmp_path, select=["RP401"]
        )
        assert rule_ids(violations) == ["RP401"]

    def test_cli_importing_service_clean(self, tmp_path):
        write_module(tmp_path, "repro.service.queue", "X = 1\n")
        found = lint_module(
            tmp_path,
            "repro.cli",
            "from repro.service.queue import X\n",
            select=["RP401"],
        )
        assert found == []

    def test_service_imports_engine_clean(self, tmp_path):
        # The allowed downward edges: service -> experiments/telemetry.
        write_module(tmp_path, "repro.experiments.executor", "X = 1\n")
        write_module(tmp_path, "repro.telemetry", "T = 1\n")
        found = lint_module(
            tmp_path,
            "repro.service.queue",
            "from repro.experiments.executor import X\n"
            "from repro.telemetry import T\n",
            select=["RP401"],
        )
        assert found == []

    def test_resolve_relative(self):
        assert (
            resolve_relative("repro.core.cenfuzz.dns_fuzz", False, 3, "netmodel.dns")
            == "repro.netmodel.dns"
        )
        assert resolve_relative("repro.netsim", True, 1, "faults") == (
            "repro.netsim.faults"
        )
        assert resolve_relative("repro.mod", False, 0, "os.path") == "os.path"


# ---------------------------------------------------------------------------
# RP501/RP502 shared mutable state


class TestMutableState:
    def test_mutable_class_default_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.devices.mod",
            "class C:\n    shared = []\n",
        )
        assert "RP501" in rule_ids(found)

    def test_field_default_mutable_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.netsim.mod",
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class C:\n"
            "    xs: list = field(default=[])\n",
        )
        assert "RP501" in rule_ids(found)

    def test_default_factory_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.netsim.mod",
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class C:\n"
            "    xs: list = field(default_factory=list)\n"
            "    _TABLE = {1: 'a'}\n",  # constant-cased lookup table
        )
        assert found == []

    def test_module_mutable_global_flagged(self, tmp_path):
        found = lint_module(
            tmp_path, "repro.devices.mod", "_cursor = [0]\n"
        )
        assert "RP502" in rule_ids(found)

    def test_global_rebind_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.netmodel.mod",
            "_COUNTER = 0\n"
            "def bump():\n    global _COUNTER\n    _COUNTER += 1\n",
        )
        assert "RP502" in rule_ids(found)

    def test_constant_table_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.netmodel.mod",
            "_NAMES = {1: 'a'}\nWORDS = ['x', 'y']\n",
        )
        assert found == []

    def test_cold_module_not_flagged(self, tmp_path):
        # experiments is outside the hot-path scope for RP502.
        found = lint_module(
            tmp_path,
            "repro.experiments.mod",
            "_cache = {}\n",
            select=["RP501", "RP502"],
        )
        assert found == []


# ---------------------------------------------------------------------------
# RP503 NetContext-owned allocator modules


class TestNetContextCounters:
    """The guard that keeps module-global counters from creeping back
    into the modules whose allocation state moved onto NetContext."""

    def test_itertools_count_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.netmodel.packet",
            "import itertools\n_ip_id_counter = itertools.count(1)\n",
            select=["RP503"],
        )
        assert rule_ids(found) == ["RP503"]
        assert "NetContext" in found[0].message

    def test_cursor_list_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.devices.actions",
            "_dns_fake_cursor = [0]\n",
            select=["RP503"],
        )
        assert rule_ids(found) == ["RP503"]

    def test_global_rebind_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.netsim.tcpstack",
            "_port = 0\ndef nxt():\n    global _port\n    _port += 1\n",
            select=["RP503"],
        )
        assert rule_ids(found) == ["RP503"]

    def test_batch_engine_module_in_scope(self, tmp_path):
        # The batched packet plane caches PathPlans per engine instance;
        # a module-level plan cache would be shared across simulators
        # (and across worker replicas), so batch.py joined the guarded
        # set.
        found = lint_module(
            tmp_path,
            "repro.netsim.batch",
            "_plan_cache = {}\n",
            select=["RP503"],
        )
        assert rule_ids(found) == ["RP503"]
        assert "NetContext" in found[0].message

    def test_constant_cased_singleton_clean(self, tmp_path):
        # netctx's own module-level default context is a sanctioned
        # constant-cased singleton.
        found = lint_module(
            tmp_path,
            "repro.netmodel.netctx",
            "class NetContext:\n    pass\n_DEFAULT_CONTEXT = NetContext()\n",
            select=["RP503"],
        )
        assert found == []

    def test_other_modules_out_of_scope(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.netsim.simulator",
            "import itertools\n_counter = itertools.count()\n",
            select=["RP503"],
        )
        assert found == []

    def test_real_allocator_modules_are_clean(self):
        targets = [
            REPO_ROOT / "src" / "repro" / "netmodel" / "netctx.py",
            REPO_ROOT / "src" / "repro" / "netmodel" / "packet.py",
            REPO_ROOT / "src" / "repro" / "netsim" / "batch.py",
            REPO_ROOT / "src" / "repro" / "netsim" / "tcpstack.py",
            REPO_ROOT / "src" / "repro" / "devices" / "actions.py",
        ]
        violations, checked = lintkit.lint(
            targets, root=REPO_ROOT, select=["RP503"]
        )
        assert checked == len(targets)
        assert violations == []


# ---------------------------------------------------------------------------
# pragmas


class TestPragma:
    def test_trailing_pragma_suppresses(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.mod",
            "import time\n"
            "x = time.time()  # lint: ignore[RP101] -- test fixture\n",
        )
        assert found == []

    def test_preceding_line_pragma_suppresses(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.devices.mod",
            "# lint: ignore[RP502] -- reset per unit by reset_cursor()\n"
            "_cursor = [0]\n",
        )
        assert found == []

    def test_pragma_is_per_rule(self, tmp_path):
        # Suppressing RP502 must not hide an RP101 on the same line —
        # and the wrong-rule pragma is itself reported stale (RP001).
        found = lint_module(
            tmp_path,
            "repro.mod",
            "import time\n"
            "x = time.time()  # lint: ignore[RP502] -- wrong rule\n",
        )
        assert rule_ids(found) == ["RP001", "RP101"]
        assert found[0].severity == "warning"
        assert found[1].severity == "error"

    def test_multi_rule_pragma(self, tmp_path):
        # RP301 fires and is suppressed; the RP302 arm never fires, so
        # it surfaces as a stale-pragma warning rather than silence.
        found = lint_module(
            tmp_path,
            "repro.core.mod",
            "for x in {1, 2}:  # lint: ignore[RP301, RP302] -- fixture\n"
            "    print(x)\n",
        )
        assert rule_ids(found) == ["RP001"]
        assert found[0].severity == "warning"
        assert "RP302" in found[0].message

    def test_fully_used_multi_rule_pragma_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.core.mod",
            "import time\n"
            "def f():\n"
            "    s = {1, 2}\n"
            "    for x in s:  # lint: ignore[RP301] -- fixture\n"
            "        t = time.time()  # lint: ignore[RP101] -- fixture\n",
        )
        assert found == []


# ---------------------------------------------------------------------------
# framework plumbing


class TestFramework:
    def test_rule_inventory(self):
        ids = {rule.id for rule in lintkit.REGISTRY.select()}
        assert {
            "RP001",
            "RP101",
            "RP201",
            "RP301",
            "RP401",
            "RP501",
            "RP601",
            "RP701",
            "RP801",
            "RP901",
        } <= ids
        # At least 18 passes across at least 9 invariant families,
        # each family owning its own hundred-block.
        assert len(ids) >= 18
        assert len({i[:3] for i in ids}) >= 9

    def test_syntax_error_is_violation(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        violations, checked = lintkit.lint([tmp_path], root=tmp_path)
        assert [v.rule_id for v in violations] == ["RP000"]
        assert checked == 1

    def test_module_name_resolution(self, tmp_path):
        path = write_module(tmp_path, "repro.netsim.mod", "X = 1\n")
        assert module_name(path) == "repro.netsim.mod"
        assert module_name(path.parent / "__init__.py") == "repro.netsim"
        loose = tmp_path / "script.py"
        loose.write_text("X = 1\n")
        assert module_name(loose) is None

    def test_unknown_rule_select_raises(self, tmp_path):
        with pytest.raises(KeyError):
            lintkit.lint([tmp_path], select=["RP999"])

    def test_parse_once_shared_tree(self, tmp_path):
        # All passes see the same FileContext (one parse per file).
        path = write_module(tmp_path, "repro.mod", "X = 1\n")
        ctx = load_context(path, root=tmp_path)
        assert isinstance(ctx, FileContext)
        assert ctx.module == "repro.mod"


# ---------------------------------------------------------------------------
# CLI + reporters


class TestCli:
    def test_exit_zero_and_text_on_clean_tree(self, tmp_path, capsys):
        write_module(tmp_path, "repro.mod", "X = 1\n")
        assert lintkit_main([str(tmp_path)]) == 0
        assert "lintkit: OK" in capsys.readouterr().out

    def test_exit_one_on_violation(self, tmp_path, capsys):
        write_module(tmp_path, "repro.mod", "import time\nx = time.time()\n")
        assert lintkit_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RP101" in out and "mod.py:2" in out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        write_module(tmp_path, "repro.mod", "X = 1\n")
        assert lintkit_main([str(tmp_path), "--select", "RP999"]) == 2

    def test_exit_two_on_missing_path(self, tmp_path):
        assert lintkit_main([str(tmp_path / "nope")]) == 2

    def test_list_rules(self, capsys):
        assert lintkit_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RP101", "RP201", "RP301", "RP401", "RP501"):
            assert rule_id in out

    def test_json_schema(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "repro.mod",
            "import time as t\nx = t.time()\n",
        )
        assert lintkit_main([str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["ok"] is False
        assert payload["checked_files"] >= 1
        assert payload["counts"] == {"RP101": 1}
        assert payload["errors"] == 1
        assert payload["warnings"] == 0
        assert set(payload["rules"]) >= {"RP101", "RP201", "RP301"}
        (violation,) = payload["violations"]
        assert violation["rule"] == "RP101"
        assert violation["line"] == 2
        assert violation["severity"] == "error"
        assert violation["path"].endswith("mod.py")
        assert "wall-clock" in violation["message"]

    def test_json_warning_keeps_ok_true(self, tmp_path, capsys):
        # A stale pragma is a warning: reported, counted, but ok stays
        # true and the exit code stays 0.
        write_module(
            tmp_path,
            "repro.mod",
            "X = 1  # lint: ignore[RP101] -- stale\n",
        )
        assert lintkit_main([str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert payload["warnings"] == 1
        (violation,) = payload["violations"]
        assert violation["rule"] == "RP001"
        assert violation["severity"] == "warning"

    def test_json_ok_on_clean(self, tmp_path, capsys):
        write_module(tmp_path, "repro.mod", "X = 1\n")
        assert lintkit_main([str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["violations"] == []

# ---------------------------------------------------------------------------
# the tree itself


class TestTree:
    def test_src_tree_lints_clean(self):
        """Tier-1 gate: new violations in src/ fail the test suite."""
        violations, checked = lintkit.lint(
            [REPO_ROOT / "src"], root=REPO_ROOT
        )
        assert checked > 50
        rendered = "\n".join(v.render() for v in violations)
        assert violations == [], f"lintkit violations:\n{rendered}"

    def test_tooling_trees_lint_clean(self):
        """`make lint` also covers tools/ and benchmarks/."""
        violations, checked = lintkit.lint(
            [REPO_ROOT / "tools", REPO_ROOT / "benchmarks"], root=REPO_ROOT
        )
        assert checked > 10
        rendered = "\n".join(v.render() for v in violations)
        assert violations == [], f"lintkit violations:\n{rendered}"
