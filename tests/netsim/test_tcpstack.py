"""Client TCP connection emulation: handshakes, probes, ports."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import ENDPOINT_IP, OK_DOMAIN, build_linear_world

from repro.netmodel.http import HTTPRequest
from repro.netsim.tcpstack import Connection, next_ephemeral_port, open_connection


class TestPorts:
    def test_ephemeral_ports_unique_in_sequence(self):
        ports = {next_ephemeral_port() for _ in range(100)}
        assert len(ports) == 100

    def test_ephemeral_ports_in_range(self):
        for _ in range(50):
            port = next_ephemeral_port()
            assert 32768 <= port < 65536


class TestConnection:
    def test_handshake_succeeds(self, linear_world):
        conn = open_connection(linear_world.sim, linear_world.client, ENDPOINT_IP, 80)
        assert conn is not None and conn.established

    def test_handshake_to_closed_port_fails(self, linear_world):
        assert (
            open_connection(
                linear_world.sim, linear_world.client, ENDPOINT_IP, 31337, retries=0
            )
            is None
        )

    def test_send_before_connect_raises(self, linear_world):
        conn = Connection(linear_world.sim, linear_world.client, ENDPOINT_IP, 80)
        with pytest.raises(RuntimeError):
            conn.send_payload(b"x")

    def test_probe_result_carries_sent_bytes(self, linear_world):
        conn = open_connection(linear_world.sim, linear_world.client, ENDPOINT_IP, 80)
        result = conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build(), ttl=2)
        assert result.sent_bytes.startswith(b"\x45")  # IPv4, IHL 5
        assert result.timed_out is (len(result.received) == 0)

    def test_distinct_connections_use_distinct_ports(self, linear_world):
        a = open_connection(linear_world.sim, linear_world.client, ENDPOINT_IP, 80)
        b = open_connection(linear_world.sim, linear_world.client, ENDPOINT_IP, 80)
        assert a.sport != b.sport

    def test_explicit_source_port_honoured(self, linear_world):
        conn = open_connection(
            linear_world.sim, linear_world.client, ENDPOINT_IP, 80, sport=45000
        )
        assert conn.sport == 45000

    def test_retries_ride_out_loss(self):
        # loss_rate applies per hop crossing, so 5% per hop is already a
        # very lossy path end to end.
        world = build_linear_world(loss_rate=0.05, seed=11)
        successes = 0
        for _ in range(10):
            conn = open_connection(world.sim, world.client, ENDPOINT_IP, 80, retries=4)
            if conn is not None:
                successes += 1
        assert successes >= 8

    def test_close_is_idempotent(self, linear_world):
        conn = open_connection(linear_world.sim, linear_world.client, ENDPOINT_IP, 80)
        conn.close()
        conn.close()  # no error
        assert not conn.established
