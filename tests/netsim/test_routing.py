"""Routes, paths and flow-hash selection (ECMP)."""

import pytest

from repro.devices.vendors import KZ_STATE, make_device
from repro.netmodel.ip import FlowKey
from repro.netsim.routing import Hop, Path, Route, single_path_route


def _path(names):
    return Path([Hop(n) for n in names])


class TestPath:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path([])

    def test_length_and_names(self):
        path = _path(["a", "b", "c"])
        assert path.length == 3
        assert path.node_names() == ("a", "b", "c")

    def test_devices_enumerated_with_link_index(self):
        device = make_device(KZ_STATE, "d", ["x.example"])
        path = Path([Hop("a"), Hop("b", link_devices=[device]), Hop("c")])
        assert path.devices() == [(1, device)]


class TestRoute:
    def test_single_path_always_selected(self):
        route = single_path_route(["a", "b"])
        flow = FlowKey("1.1.1.1", "2.2.2.2", 1, 2)
        assert route.select(flow).node_names() == ("a", "b")

    def test_requires_paths(self):
        with pytest.raises(ValueError):
            Route([])

    def test_weights_must_match(self):
        with pytest.raises(ValueError):
            Route([_path(["a"])], weights=[1.0, 2.0])

    def test_selection_deterministic_per_flow(self):
        route = Route([_path(["a", "x"]), _path(["b", "x"])])
        flow = FlowKey("1.1.1.1", "2.2.2.2", 1234, 80)
        chosen = {route.select(flow).node_names() for _ in range(10)}
        assert len(chosen) == 1

    def test_different_ports_spread_over_paths(self):
        route = Route([_path(["a", "x"]), _path(["b", "x"])])
        seen = {
            route.select(FlowKey("1.1.1.1", "2.2.2.2", sport, 80)).node_names()
            for sport in range(2000, 2200)
        }
        assert len(seen) == 2

    def test_weights_bias_selection(self):
        route = Route(
            [_path(["heavy"]), _path(["light"])], weights=[9.0, 1.0]
        )
        counts = {"heavy": 0, "light": 0}
        for sport in range(3000, 4000):
            name = route.select(FlowKey("1.1.1.1", "2.2.2.2", sport, 80)).node_names()[0]
            counts[name] += 1
        assert counts["heavy"] > 5 * counts["light"]

    def test_seed_changes_mapping(self):
        route = Route([_path(["a"]), _path(["b"])])
        flow = FlowKey("1.1.1.1", "2.2.2.2", 5555, 80)
        names = {route.select(flow, seed=s).node_names() for s in range(30)}
        assert len(names) == 2

    def test_all_devices_deduplicates(self):
        device = make_device(KZ_STATE, "d", ["x.example"])
        paths = [
            Path([Hop("a"), Hop("b", link_devices=[device])]),
            Path([Hop("c"), Hop("b", link_devices=[device])]),
        ]
        route = Route(paths)
        assert len(route.all_devices()) == 1

    def test_single_path_route_devices(self):
        device = make_device(KZ_STATE, "d", ["x.example"])
        route = single_path_route(["a", "b", "c"], devices_at={1: [device]})
        assert route.paths[0].devices() == [(1, device)]


class TestPathLinks:
    def test_links_include_client_access_link(self):
        path = _path(["a", "b", "ep"])
        assert path.links("client1") == (
            ("client1", "a"),
            ("a", "b"),
            ("b", "ep"),
        )

    def test_link_index_matches_device_convention(self):
        # Path.devices() reports (link_index, device) with the device on
        # the link leading into hops[link_index]; links(origin) must use
        # the same indexing so localizers can join the two.
        device = make_device(KZ_STATE, "d", ["x.example"])
        path = Path([Hop("a"), Hop("b", link_devices=[device]), Hop("ep")])
        [(link_index, found)] = path.devices()
        assert found is device
        assert path.links("c")[link_index] == ("a", "b")


class TestEnumeratePaths:
    def test_registration_order_and_normalized_weights(self):
        route = Route(
            [_path(["a", "x"]), _path(["b", "x"]), _path(["c", "x"])],
            weights=[6.0, 3.0, 1.0],
        )
        enumerated = route.enumerate_paths()
        assert [p.node_names()[0] for p, _ in enumerated] == ["a", "b", "c"]
        assert [w for _, w in enumerated] == pytest.approx([0.6, 0.3, 0.1])
        assert sum(w for _, w in enumerated) == pytest.approx(1.0)

    def test_enumeration_is_stable(self):
        route = Route([_path(["a"]), _path(["b"])], weights=[0.8, 0.2])
        assert route.enumerate_paths() == route.enumerate_paths()

    def test_selected_path_is_enumerated(self):
        route = Route(
            [_path(["a", "x"]), _path(["b", "x"])], weights=[0.7, 0.3]
        )
        enumerated = [p for p, _ in route.enumerate_paths()]
        for sport in range(4000, 4050):
            flow = FlowKey("1.1.1.1", "2.2.2.2", sport, 80)
            assert route.select(flow) in enumerated

    def test_traversed_links_match_selection(self):
        route = Route(
            [_path(["a", "x", "ep"]), _path(["b", "y", "ep"])],
            weights=[0.5, 0.5],
        )
        for sport in range(5000, 5040):
            for seed in (0, 7):
                flow = FlowKey("1.1.1.1", "2.2.2.2", sport, 80)
                assert route.traversed_links(
                    flow, "client1", seed=seed
                ) == route.select(flow, seed=seed).links("client1")

    def test_weighted_multipath_covers_all_link_sets(self):
        route = Route(
            [_path(["a", "x", "ep"]), _path(["b", "y", "ep"])],
            weights=[0.8, 0.2],
        )
        seen = {
            route.traversed_links(
                FlowKey("1.1.1.1", "2.2.2.2", sport, 80), "c"
            )
            for sport in range(6000, 6200)
        }
        assert seen == {
            (("c", "a"), ("a", "x"), ("x", "ep")),
            (("c", "b"), ("b", "y"), ("y", "ep")),
        }
