"""Simulator forwarding: TTL expiry, ICMP generation, transforms,
reverse-path delivery, loss and the virtual clock."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import (
    BLOCKED_DOMAIN,
    CONTROL_DOMAIN,
    ENDPOINT_IP,
    OK_DOMAIN,
    build_linear_world,
    make_profile_device,
)

from repro.devices.vendors import BY_DPI, KZ_STATE, TSPU_TTLCOPY
from repro.netmodel import tcp as tcpmod
from repro.netmodel.http import HTTPRequest
from repro.netmodel.icmp import QUOTE_RFC1812
from repro.netmodel.packet import tcp_packet
from repro.netsim.tcpstack import open_connection


def _probe(world, domain, ttl, port=80):
    conn = open_connection(world.sim, world.client, world.endpoint.ip, port)
    assert conn is not None
    result = conn.send_payload(HTTPRequest.normal(domain).build(), ttl=ttl)
    conn.close()
    world.sim.advance(120)
    return result.received


class TestTTLExpiry:
    def test_each_router_answers_at_its_distance(self, linear_world):
        for i, router in enumerate(linear_world.routers, start=1):
            received = _probe(linear_world, OK_DOMAIN, ttl=i)
            assert len(received) == 1
            assert received[0].is_icmp
            assert received[0].ip.src == router.ip

    def test_endpoint_reached_past_last_router(self, linear_world):
        received = _probe(linear_world, OK_DOMAIN, ttl=linear_world.endpoint_distance)
        assert any(p.is_tcp and p.ip.src == ENDPOINT_IP for p in received)

    def test_silent_router_produces_timeout(self):
        world = build_linear_world(silent_routers=(2,))
        assert _probe(world, OK_DOMAIN, ttl=3) == []
        # Other hops still answer.
        assert _probe(world, OK_DOMAIN, ttl=2) != []

    def test_icmp_quotes_contain_sent_ports(self, linear_world):
        received = _probe(linear_world, OK_DOMAIN, ttl=1)
        quote = received[0].icmp.quote
        # Quote carries IP header + >=8 transport bytes (ports+seq).
        assert len(quote) >= 28

    def test_reply_ttl_decrements_on_return(self, linear_world):
        received = _probe(linear_world, OK_DOMAIN, ttl=2)
        # ICMP from hop 2 crosses router 1 on the way back: 64 - 1.
        assert received[0].ip.ttl == 63


class TestRouterTransforms:
    def test_tos_rewrite_visible_in_quote(self):
        world = build_linear_world()
        world.routers[1].rewrite_tos = 0x28
        received = _probe(world, OK_DOMAIN, ttl=4)
        from repro.netmodel.ip import IPHeader

        quoted_ip, _ = IPHeader.from_bytes(received[0].icmp.quote)
        assert quoted_ip.tos == 0x28

    def test_tos_rewrite_not_visible_before_rewriter(self):
        world = build_linear_world()
        world.routers[3].rewrite_tos = 0x28
        received = _probe(world, OK_DOMAIN, ttl=2)
        from repro.netmodel.ip import IPHeader

        quoted_ip, _ = IPHeader.from_bytes(received[0].icmp.quote)
        assert quoted_ip.tos == 0

    def test_sent_packet_not_mutated_by_transforms(self):
        world = build_linear_world()
        world.routers[0].rewrite_tos = 0x28
        conn = open_connection(world.sim, world.client, world.endpoint.ip, 80)
        result = conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build(), ttl=3)
        from repro.netmodel.ip import IPHeader

        sent_ip, _ = IPHeader.from_bytes(result.sent_bytes)
        assert sent_ip.tos == 0


class TestQuotingPolicies:
    def test_rfc1812_router_quotes_payload(self):
        world = build_linear_world()
        world.routers[0].quoting = QUOTE_RFC1812
        received = _probe(world, OK_DOMAIN, ttl=1)
        assert b"Host: " in received[0].icmp.quote

    def test_rfc792_router_quotes_only_64_bits(self, linear_world):
        received = _probe(linear_world, OK_DOMAIN, ttl=1)
        assert len(received[0].icmp.quote) == 28


class TestEndpointBehaviour:
    def test_http_request_served(self, linear_world):
        received = _probe(linear_world, OK_DOMAIN, ttl=64)
        bodies = [p.tcp.payload for p in received if p.is_tcp and p.tcp.payload]
        assert any(b"200 OK" in b for b in bodies)

    def test_unknown_host_rejected(self, linear_world):
        received = _probe(linear_world, "www.other.example", ttl=64)
        bodies = [p.tcp.payload for p in received if p.is_tcp and p.tcp.payload]
        assert any(b"403" in b or b"404" in b for b in bodies)

    def test_syn_to_closed_port_resets(self, linear_world):
        conn = open_connection(
            linear_world.sim, linear_world.client, ENDPOINT_IP, 9999, retries=0
        )
        assert conn is None

    def test_data_on_torn_down_flow_resets(self, linear_world):
        conn = open_connection(linear_world.sim, linear_world.client, ENDPOINT_IP, 80)
        # Endpoint closes after serving (close=True); further data
        # on the dead flow elicits an RST from the endpoint stack.
        conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build())
        second = conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build())
        flags = [p.tcp.flags for p in second.received if p.is_tcp]
        assert any(f & tcpmod.RST for f in flags)


class TestLossAndClock:
    def test_lossless_by_default(self, linear_world):
        for _ in range(20):
            assert _probe(linear_world, OK_DOMAIN, ttl=1) != []

    def test_heavy_loss_causes_timeouts(self):
        world = build_linear_world(loss_rate=0.5, seed=3)
        timeouts = 0
        for _ in range(10):
            conn = open_connection(world.sim, world.client, ENDPOINT_IP, 80)
            if conn is None:
                timeouts += 1  # even the handshake can fail under 50% loss
                continue
            result = conn.send_payload(
                HTTPRequest.normal(OK_DOMAIN).build(), ttl=3
            )
            if not result.received:
                timeouts += 1
        assert timeouts > 0

    def test_clock_advances_per_packet(self, linear_world):
        before = linear_world.sim.clock
        _probe(linear_world, OK_DOMAIN, ttl=1)
        assert linear_world.sim.clock > before

    def test_clock_cannot_go_backwards(self, linear_world):
        with pytest.raises(ValueError):
            linear_world.sim.advance(-1)

    def test_no_route_raises(self, linear_world):
        orphan = tcp_packet(linear_world.client.ip, "203.0.113.99", 1, 2)
        with pytest.raises(KeyError):
            linear_world.sim.send_from_client(orphan)


class TestDeviceMechanics:
    def test_drop_device_produces_timeouts_past_link(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(device=device, device_link=2)
        assert _probe(world, BLOCKED_DOMAIN, ttl=2) != []  # before device
        assert _probe(world, BLOCKED_DOMAIN, ttl=3) == []  # at/after device
        assert _probe(world, BLOCKED_DOMAIN, ttl=9) == []

    def test_drop_device_passes_control_domain(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(device=device, device_link=2)
        received = _probe(world, CONTROL_DOMAIN, ttl=64)
        assert any(p.is_tcp and p.tcp.payload for p in received)

    def test_onpath_device_injects_and_passes(self):
        device = make_profile_device(BY_DPI)
        world = build_linear_world(device=device, device_link=2)
        received = _probe(world, BLOCKED_DOMAIN, ttl=3)
        kinds = {("icmp" if p.is_icmp else "tcp") for p in received}
        assert kinds == {"icmp", "tcp"}  # both RST and Time Exceeded

    def test_onpath_device_lets_request_reach_endpoint(self):
        device = make_profile_device(BY_DPI)
        world = build_linear_world(device=device, device_link=2)
        received = _probe(world, BLOCKED_DOMAIN, ttl=64)
        assert any(p.is_tcp and p.tcp.payload for p in received)
        assert any(p.is_tcp and (p.tcp.flags & tcpmod.RST) for p in received)

    def test_ttlcopy_injection_dies_until_double_distance(self):
        device = make_profile_device(TSPU_TTLCOPY)
        world = build_linear_world(n_routers=6, device=device, device_link=3)
        # Device is ~3 hops out: RSTs reach us only from TTL 7 (=2*3+1).
        for ttl in range(4, 7):
            assert _probe(world, BLOCKED_DOMAIN, ttl=ttl) == []
        received = _probe(world, BLOCKED_DOMAIN, ttl=7)
        assert received and received[0].tcp.flags & tcpmod.RST
        assert received[0].ip.ttl == 1  # the §4.3 signature

    def test_residual_censorship_blocks_control_within_window(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(device=device, device_link=2)
        _probe_no_wait(world, BLOCKED_DOMAIN)
        # Immediately afterwards even the control domain fails.
        conn = open_connection(world.sim, world.client, ENDPOINT_IP, 80, retries=0)
        if conn is not None:
            result = conn.send_payload(HTTPRequest.normal(CONTROL_DOMAIN).build())
            assert not any(p.is_tcp and p.tcp.payload for p in result.received)
        # After the 120s wait the tuple is forgiven.
        world.sim.advance(120)
        received = _probe(world, CONTROL_DOMAIN, ttl=64)
        assert any(p.is_tcp and p.tcp.payload for p in received)


def _probe_no_wait(world, domain):
    conn = open_connection(world.sim, world.client, world.endpoint.ip, 80)
    assert conn is not None
    conn.send_payload(HTTPRequest.normal(domain).build())
    conn.close()
