"""Property-based simulator invariants (hypothesis)."""

import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import OK_DOMAIN, build_linear_world

from repro.netmodel.http import HTTPRequest
from repro.netsim.tcpstack import open_connection


@st.composite
def topology_and_ttl(draw):
    n_routers = draw(st.integers(min_value=2, max_value=10))
    ttl = draw(st.integers(min_value=1, max_value=n_routers + 4))
    seed = draw(st.integers(min_value=0, max_value=100))
    return n_routers, ttl, seed


class TestForwardingInvariants:
    @settings(max_examples=30, deadline=None)
    @given(params=topology_and_ttl())
    def test_icmp_source_matches_hop_distance(self, params):
        """A probe with TTL t <= router count always draws its ICMP
        from exactly the t-th router."""
        n_routers, ttl, seed = params
        world = build_linear_world(n_routers=n_routers, seed=seed)
        conn = open_connection(world.sim, world.client, world.endpoint.ip, 80)
        result = conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build(), ttl=ttl)
        if ttl <= n_routers:
            icmp = [p for p in result.received if p.is_icmp]
            assert len(icmp) == 1
            assert icmp[0].ip.src == world.routers[ttl - 1].ip
        else:
            # Past the last router the endpoint answers.
            assert any(
                p.is_tcp and p.ip.src == world.endpoint.ip
                for p in result.received
            )

    @settings(max_examples=20, deadline=None)
    @given(params=topology_and_ttl())
    def test_no_response_without_cause(self, params):
        """On a lossless path every probe elicits exactly one kind of
        reaction: ICMP below the endpoint, endpoint traffic at/above."""
        n_routers, ttl, seed = params
        world = build_linear_world(n_routers=n_routers, seed=seed)
        conn = open_connection(world.sim, world.client, world.endpoint.ip, 80)
        result = conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build(), ttl=ttl)
        assert result.received, "lossless path must always answer"
        kinds = {("icmp" if p.is_icmp else "tcp") for p in result.received}
        assert len(kinds) == 1

    @settings(max_examples=20, deadline=None)
    @given(
        n_routers=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_reply_ttl_arithmetic(self, n_routers, seed):
        """An ICMP from hop k arrives with TTL 64 - (k-1): the reverse
        path crosses k-1 routers."""
        world = build_linear_world(n_routers=n_routers, seed=seed)
        conn = open_connection(world.sim, world.client, world.endpoint.ip, 80)
        for k in range(1, n_routers + 1):
            result = conn.send_payload(
                HTTPRequest.normal(OK_DOMAIN).build(), ttl=k
            )
            icmp = [p for p in result.received if p.is_icmp]
            assert icmp[0].ip.ttl == 64 - (k - 1)

    @settings(max_examples=15, deadline=None)
    @given(
        n_routers=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_clock_monotonic_under_traffic(self, n_routers, seed):
        world = build_linear_world(n_routers=n_routers, seed=seed)
        last = world.sim.clock
        for _ in range(5):
            conn = open_connection(world.sim, world.client, world.endpoint.ip, 80)
            conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build(), ttl=3)
            assert world.sim.clock > last
            last = world.sim.clock
