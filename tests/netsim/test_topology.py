"""Topology registration, lookups and service scanning."""

import pytest

from repro.netsim.topology import Client, Endpoint, Router, Service, Topology


def _topology():
    topo = Topology("t")
    topo.add_router(Router("r1", "10.0.0.1", asn=1))
    topo.add_client(Client("c1", "10.0.1.1", asn=2))
    topo.add_endpoint(Endpoint("e1", "10.0.2.1", asn=3))
    return topo


class TestRegistration:
    def test_duplicate_ip_rejected(self):
        topo = _topology()
        with pytest.raises(ValueError):
            topo.add_router(Router("r2", "10.0.0.1", asn=9))

    def test_node_lookup_by_ip(self):
        topo = _topology()
        assert topo.node_at("10.0.0.1").name == "r1"
        assert topo.node_at("192.0.2.1") is None

    def test_kind_registries(self):
        topo = _topology()
        assert "r1" in topo.routers
        assert "c1" in topo.clients
        assert "e1" in topo.endpoints


class TestRoutes:
    def test_missing_route_raises_keyerror(self):
        topo = _topology()
        with pytest.raises(KeyError):
            topo.route_between("10.0.1.1", "10.0.2.1")

    def test_has_route(self):
        from repro.netsim.routing import single_path_route

        topo = _topology()
        topo.add_route("10.0.1.1", "10.0.2.1", single_path_route(["r1", "e1"]))
        assert topo.has_route("10.0.1.1", "10.0.2.1")
        assert not topo.has_route("10.0.2.1", "10.0.1.1")


class TestServices:
    def test_scan_open_ports(self):
        topo = _topology()
        node = topo.node_at("10.0.0.1")
        node.add_service(Service(port=22, protocol="ssh", banner=b"SSH-2.0-x\r\n"))
        node.add_service(Service(port=443, protocol="https"))
        assert topo.scan_ports("10.0.0.1", [22, 80, 443]) == [22, 443]

    def test_scan_unknown_ip_empty(self):
        assert _topology().scan_ports("203.0.113.1", [22]) == []

    def test_service_at(self):
        topo = _topology()
        node = topo.node_at("10.0.0.1")
        node.add_service(Service(port=22, protocol="ssh"))
        assert topo.service_at("10.0.0.1", 22).protocol == "ssh"
        assert topo.service_at("10.0.0.1", 23) is None

    def test_service_probe_responses_prefix_match(self):
        service = Service(
            port=80,
            protocol="http",
            probe_responses={b"GET ": b"HTTP/1.1 200 OK\r\n\r\n"},
        )
        assert service.respond(b"GET / HTTP/1.1\r\n") == b"HTTP/1.1 200 OK\r\n\r\n"
        assert service.respond(b"PUT /") == b""

    def test_open_ports_sorted(self):
        node = Router("r", "10.0.9.1", asn=1)
        node.add_service(Service(port=443, protocol="https"))
        node.add_service(Service(port=22, protocol="ssh"))
        assert node.open_ports() == [22, 443]
