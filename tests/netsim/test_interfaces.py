"""The simulator's plug-in interfaces."""

from repro.netmodel.packet import tcp_packet
from repro.netsim.interfaces import AppReply, Verdict


class TestVerdict:
    def test_pass_through_not_acted(self):
        assert not Verdict.pass_through().acted

    def test_drop_is_acted(self):
        assert Verdict(drop=True).acted

    def test_injections_are_acted(self):
        packet = tcp_packet("1.1.1.1", "2.2.2.2", 1, 2)
        assert Verdict(inject_to_client=[packet]).acted
        assert Verdict(inject_to_server=[packet]).acted


class TestAppReply:
    def test_respond_builder(self):
        reply = AppReply.respond(b"a", b"b", close=True)
        assert reply.responses == [b"a", b"b"]
        assert reply.close and not reply.drop and not reply.reset

    def test_drop_reply(self):
        assert AppReply(drop=True).drop
