"""The unified transit engine: direction semantics as declared policy.

Every walk kind (forward client traffic, injected-to-server forgeries,
reverse return traffic) runs through ``Simulator._run_transit``; these
tests pin the policy-bit matrix, the shared loss-roll stream, TTL
decrement parity across directions, and the single-resolve-per-path
memoization the engine relies on.
"""

import inspect
import random

import pytest

from repro.netmodel import tcp as tcpmod
from repro.netmodel.packet import tcp_packet
from repro.netsim.routing import Hop, Path, Route
from repro.netsim.simulator import (
    CLIENT_LINK,
    POLICY_FORWARD,
    POLICY_INJECTED_TO_SERVER,
    POLICY_REVERSE,
    Simulator,
    Transit,
    TransitPolicy,
)
from repro.telemetry import Telemetry

from ..helpers import CLIENT_IP, ENDPOINT_IP, build_linear_world


def _path_for(world):
    route = world.sim.topology.route_between(CLIENT_IP, ENDPOINT_IP)
    return route.paths[0]


def _probe(ttl=64, payload=b"", sport=40000):
    return tcp_packet(
        CLIENT_IP,
        ENDPOINT_IP,
        sport,
        80,
        flags=tcpmod.PSH | tcpmod.ACK if payload else tcpmod.SYN,
        seq=100,
        ttl=ttl,
        payload=payload,
    )


def _reverse_packet(ttl=64):
    return tcp_packet(
        ENDPOINT_IP,
        CLIENT_IP,
        80,
        40000,
        flags=tcpmod.SYN | tcpmod.ACK,
        seq=1_000_000,
        ack=101,
        ttl=ttl,
    )


class TestPolicyMatrix:
    """The declared divergence bits, pinned one policy at a time."""

    @pytest.mark.parametrize(
        "policy,inspect_devices,icmp,first_link_loss,transforms,services",
        [
            (POLICY_FORWARD, True, True, True, True, True),
            (POLICY_INJECTED_TO_SERVER, False, False, False, True, False),
            (POLICY_REVERSE, False, False, True, False, False),
        ],
        ids=["forward", "injected", "reverse"],
    )
    def test_bits(
        self, policy, inspect_devices, icmp, first_link_loss, transforms, services
    ):
        assert policy.inspect_devices is inspect_devices
        assert policy.emit_icmp_on_expiry is icmp
        assert policy.loss_on_first_link is first_link_loss
        assert policy.apply_router_transforms is transforms
        assert policy.deliver_via_services is services

    def test_capture_labels(self):
        assert POLICY_FORWARD.loss_event == "loss"
        assert POLICY_INJECTED_TO_SERVER.loss_event == "loss-injected"
        assert POLICY_REVERSE.loss_event == "loss-reverse"
        assert POLICY_FORWARD.expiry_event == "ttl-expired"
        assert POLICY_INJECTED_TO_SERVER.expiry_event == "injected-ttl-expired"
        assert POLICY_REVERSE.expiry_event == "reverse-ttl-expired"

    def test_policies_are_immutable(self):
        with pytest.raises(Exception):
            POLICY_FORWARD.inspect_devices = False


class TestSingleHopLoop:
    def test_exactly_one_hop_traversal_loop(self):
        """The refactor's contract: one loop walks every packet."""
        source = inspect.getsource(Simulator)
        assert source.count("for index in") == 1

    def test_legacy_walk_methods_are_gone(self):
        for name in ("_walk_forward", "_walk_reverse", "_walk_injected_to_server"):
            assert not hasattr(Simulator, name)


class TestLossRollStream:
    """One RNG roll per link crossed, in hop order, from the shared
    base RNG — the property that keeps retries and directions honest."""

    def test_forward_walk_consumes_one_roll_per_link(self):
        world = build_linear_world(n_routers=4, loss_rate=0.0001, seed=13)
        world.sim.send_from_client(_probe())
        # Endpoint answered (SYN-ACK): forward crossed 5 links, the
        # reply crossed 4 router links plus the client link.
        expected = random.Random(13)
        for _ in range(5 + 5):
            expected.random()
        assert world.sim._rng.random() == expected.random()

    def test_same_seed_same_loss_outcomes(self):
        outcomes = []
        for _ in range(2):
            world = build_linear_world(n_routers=5, loss_rate=0.4, seed=99)
            world.sim._capture_enabled = True
            for _ in range(6):
                world.sim.send_from_client(_probe())
            outcomes.append(
                [(r.location, r.event) for r in world.sim.capture]
            )
        assert outcomes[0] == outcomes[1]

    def test_injected_transit_skips_entry_link_roll(self):
        """The device's own link carries no loss roll; later links do."""
        world = build_linear_world(n_routers=3, loss_rate=1.0, seed=1)
        sim = world.sim
        sim._capture_enabled = True
        path = _path_for(world)
        forged = _probe(payload=b"forged", sport=47001)
        forged.injected = True
        deliveries = []
        sim._run_transit(
            Transit(forged, path, 2, POLICY_INJECTED_TO_SERVER, CLIENT_IP),
            deliveries,
        )
        # With 100% loss the packet survives its entry link (no roll)
        # and dies on the very next one.
        events = [(r.location, r.event) for r in sim.capture]
        assert events == [("endpoint", "loss-injected")]
        assert deliveries == []

    def test_reverse_client_link_loss_is_silent(self):
        """Loss on the final link into the client drops the delivery
        without a capture record (there is no hop to attribute it to)."""
        world = build_linear_world(n_routers=2, loss_rate=1.0, seed=3)
        sim = world.sim
        sim._capture_enabled = True
        deliveries = []
        sim._run_transit(
            Transit(_reverse_packet(), _path_for(world), 0, POLICY_REVERSE, CLIENT_IP),
            deliveries,
        )
        assert deliveries == []
        assert sim.capture == []


class TestTTLDecrementParity:
    """Routers cost exactly one TTL in every direction."""

    def test_forward_arrival_ttl(self):
        world = build_linear_world(n_routers=4, seed=5)
        sim = world.sim
        sim._capture_enabled = True
        sim.send_from_client(_probe(ttl=64))
        delivered = [r for r in sim.capture if r.event == "delivered"]
        assert delivered, "probe should reach the endpoint"
        # 4 routers cost 4 TTL.
        assert "ttl=60" in delivered[0].detail

    def test_reverse_arrival_ttl(self):
        world = build_linear_world(n_routers=4, seed=5)
        deliveries = []
        world.sim._run_transit(
            Transit(
                _reverse_packet(ttl=64),
                _path_for(world),
                4,
                POLICY_REVERSE,
                CLIENT_IP,
            ),
            deliveries,
        )
        assert len(deliveries) == 1
        assert deliveries[0].ip.ttl == 64 - 4

    @pytest.mark.parametrize(
        "policy", [POLICY_INJECTED_TO_SERVER, POLICY_REVERSE], ids=["injected", "reverse"]
    )
    def test_silent_expiry_counted(self, policy):
        world = build_linear_world(n_routers=4, seed=5)
        sim = world.sim
        sim._capture_enabled = True
        tel = Telemetry()
        sim.set_telemetry(tel)
        deliveries = []
        if policy is POLICY_REVERSE:
            transit = Transit(
                _reverse_packet(ttl=1), _path_for(world), 4, POLICY_REVERSE, CLIENT_IP
            )
        else:
            forged = _probe(ttl=1, payload=b"x", sport=47002)
            forged.injected = True
            transit = Transit(
                forged, _path_for(world), 0, POLICY_INJECTED_TO_SERVER, CLIENT_IP
            )
        sim._run_transit(transit, deliveries)
        assert deliveries == []
        assert tel.counters[policy.expiry_counter] == 1
        assert any(r.event == policy.expiry_event for r in sim.capture)


class TestPathResolutionMemoization:
    """One path resolves at most once, no matter how many transits
    (forward, ICMP returns, injections) traverse it."""

    def test_resolve_returns_cached_list(self):
        world = build_linear_world(n_routers=3)
        path = _path_for(world)
        first = path.resolve(world.topology)
        assert path.resolve(world.topology) is first

    def test_walk_with_spawned_transits_resolves_once(self):
        world = build_linear_world(n_routers=4, seed=5)
        path = _path_for(world)
        path.nodes = None  # simulate a lazily-registered path
        calls = []
        original = path.resolve

        def counting_resolve(topology):
            calls.append(1)
            return original(topology)

        path.resolve = counting_resolve
        # A TTL-limited probe triggers a router expiry, whose ICMP
        # response spawns a reverse transit over the same path.
        responses = world.sim.send_from_client(_probe(ttl=2))
        assert any(p.is_icmp for p in responses)
        assert len(calls) == 1
