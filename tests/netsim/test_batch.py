"""Batch-vs-scalar parity for the batched packet plane (PR 6 tentpole).

The :class:`~repro.netsim.batch.BatchEngine` promises to reproduce the
scalar engine's observable behaviour *exactly*: delivered bytes, the
base RNG draw stream, NetContext identifier streams, the virtual clock
and every telemetry counter. These tests drive both engines over the
same workloads on fresh worlds and compare all five surfaces.

The fast subset (plain / device / rewrite worlds at two loss rates)
runs in tier 1; the exhaustive world x loss grid and the fault-plan
fallback presets ride behind ``--runslow``.
"""

import sys
from pathlib import Path as _Path

import pytest

sys.path.insert(0, str(_Path(__file__).parent.parent))
from helpers import (
    BLOCKED_DOMAIN,
    CLIENT_IP,
    ENDPOINT_IP,
    OK_DOMAIN,
    build_linear_world,
    make_profile_device,
)

from repro.devices.vendors import KZ_STATE
from repro.netmodel import tcp as tcpmod
from repro.netmodel.packet import tcp_packet, udp_packet
from repro.netsim.batch import BatchEngine, patched_quote
from repro.netsim.faults import PRESETS
from repro.netsim.routing import Hop, Path, Route
from repro.netsim.simulator import Simulator
from repro.netsim.tcpstack import open_connection
from repro.netsim.topology import Client, Endpoint, Router, Topology
from repro.services.dnsresolver import DNSResolver
from repro.telemetry import Telemetry

PAYLOAD = b"GET / HTTP/1.1\r\nHost: " + OK_DOMAIN.encode() + b"\r\n\r\n"
BLOCKED_PAYLOAD = (
    b"GET / HTTP/1.1\r\nHost: " + BLOCKED_DOMAIN.encode() + b"\r\n\r\n"
)


# ---------------------------------------------------------------------------
# World builders
# ---------------------------------------------------------------------------


def world_plain(loss_rate=0.0, seed=7):
    return build_linear_world(n_routers=6, loss_rate=loss_rate, seed=seed)


def world_device(loss_rate=0.0, seed=7):
    return build_linear_world(
        n_routers=6,
        device=make_profile_device(KZ_STATE),
        device_link=3,
        loss_rate=loss_rate,
        seed=seed,
    )


def world_rewrite(loss_rate=0.0, seed=7):
    world = build_linear_world(n_routers=6, loss_rate=loss_rate, seed=seed)
    world.routers[1].rewrite_tos = 0x28
    return world


def world_silent(loss_rate=0.0, seed=7):
    return build_linear_world(
        n_routers=6, silent_routers=(1, 3), loss_rate=loss_rate, seed=seed
    )


WORLDS = {
    "plain": world_plain,
    "device": world_device,
    "rewrite": world_rewrite,
    "silent": world_silent,
}


def build_multipath_world(loss_rate=0.0, seed=7):
    """Two parallel 4-router paths so ECMP flow hashing matters."""
    topology = Topology("test-multipath")
    client = topology.add_client(
        Client("client", CLIENT_IP, asn=64500, country="XX", in_country=True)
    )
    paths = []
    for p in range(2):
        hops = []
        for i in range(4):
            router = topology.add_router(
                Router(f"p{p}r{i}", f"100.8{p}.{i}.1", asn=64501 + i)
            )
            hops.append(Hop(router.name))
        paths.append(hops)
    from repro.services.webserver import WebServer

    endpoint = topology.add_endpoint(
        Endpoint(
            "endpoint",
            ENDPOINT_IP,
            asn=64999,
            server=WebServer([OK_DOMAIN]),
            country="XX",
        )
    )
    route_paths = [Path(h + [Hop(endpoint.name)]) for h in paths]
    topology.add_route(client.ip, endpoint.ip, Route(route_paths))
    sim = Simulator(topology, seed=seed, loss_rate=loss_rate)
    return sim, client, endpoint


def build_dns_world(loss_rate=0.0, seed=7, n_routers=6, silent=()):
    """A linear path to a resolver endpoint (no web server needed)."""
    topology = Topology("test-dns")
    client = topology.add_client(
        Client("client", CLIENT_IP, asn=64500, country="XX", in_country=True)
    )
    hops = []
    for i in range(n_routers):
        router = topology.add_router(
            Router(
                f"r{i}",
                f"100.81.{i}.1",
                asn=64501 + i,
                responds_icmp=i not in silent,
            )
        )
        hops.append(Hop(router.name))
    endpoint = topology.add_endpoint(
        Endpoint(
            "resolver",
            ENDPOINT_IP,
            asn=64999,
            country="XX",
            resolver=DNSResolver(zone={OK_DOMAIN: "93.184.216.34"}),
            services={53: "dns"},
        )
    )
    hops.append(Hop(endpoint.name))
    topology.add_route(client.ip, endpoint.ip, Route([Path(hops)]))
    sim = Simulator(topology, seed=seed, loss_rate=loss_rate)
    return sim, client, endpoint


# ---------------------------------------------------------------------------
# Workloads + observable snapshots
# ---------------------------------------------------------------------------


def tcp_workflow(sim, client, engine=None, n=24):
    """Fresh-connection probes over a TTL ladder, with retries."""
    out = []
    for i in range(n):
        payload = BLOCKED_PAYLOAD if i % 3 == 0 else PAYLOAD
        conn = open_connection(sim, client, ENDPOINT_IP, 80, engine=engine)
        if conn is None:
            out.append(("handshake-failed",))
            sim.advance(1.0)
            continue
        result = conn.send_payload(
            payload, ttl=1 + (i % 9), retries=2, retry_wait=1.0
        )
        conn.close()
        out.append(tuple(p.to_bytes() for p in result.received))
    return out


def observe(sim, tel):
    """Everything the two engines must agree on, beyond deliveries."""
    counters = dict(tel.counters)
    counters.pop("sim.batch_fast_path", None)
    counters.pop("sim.batch_scalar_fallback", None)
    counters.pop("sim.batches", None)
    return (
        repr(sim.net_context),
        [sim._rng.random() for _ in range(4)],
        sim.clock,
        counters,
    )


def run_pair(builder, loss_rate, workload=tcp_workflow, plan=None):
    """Run ``workload`` scalar then batched on fresh worlds; compare."""
    results = []
    for use_engine in (False, True):
        world = builder(loss_rate=loss_rate)
        sim, client = world.sim, world.client
        tel = Telemetry()
        sim.set_telemetry(tel)
        if plan is not None:
            sim.set_fault_plan(plan)
        engine = sim.batch_engine() if use_engine else None
        out = workload(sim, client, engine=engine)
        results.append((out, observe(sim, tel)))
    (scalar_out, scalar_obs), (batch_out, batch_obs) = results
    assert scalar_out == batch_out
    assert scalar_obs == batch_obs


# ---------------------------------------------------------------------------
# patched_quote
# ---------------------------------------------------------------------------


class TestPatchedQuote:
    @pytest.mark.parametrize("ttl", [1, 4, 64, 255])
    def test_equals_full_reserialization_tcp(self, ttl):
        packet = tcp_packet(
            CLIENT_IP,
            ENDPOINT_IP,
            40000,
            80,
            flags=tcpmod.PSH | tcpmod.ACK,
            seq=1234,
            ack=5678,
            ttl=9,
            payload=b"hello quote",
            ip_id=77,
        )
        rebuilt = packet.to_bytes()
        expected_pkt_ip = packet.ip.copy(ttl=ttl)
        expected = type(packet)(
            ip=expected_pkt_ip, tcp=packet.tcp
        ).to_bytes()
        assert patched_quote(rebuilt, ttl) == expected

    def test_equals_full_reserialization_udp(self):
        packet = udp_packet(
            CLIENT_IP, ENDPOINT_IP, 41000, 53, payload=b"q" * 30, ttl=7,
            ip_id=99,
        )
        wire = packet.to_bytes()
        expected = type(packet)(
            ip=packet.ip.copy(ttl=1), udp=packet.udp
        ).to_bytes()
        assert patched_quote(wire, 1) == expected


# ---------------------------------------------------------------------------
# send() parity — fast tier-1 subset
# ---------------------------------------------------------------------------


class TestSendParity:
    @pytest.mark.parametrize("name", ["plain", "device", "rewrite"])
    @pytest.mark.parametrize("loss", [0.0, 0.2])
    def test_tcp_workflow_parity(self, name, loss):
        run_pair(WORLDS[name], loss)

    def test_silent_router_parity(self):
        run_pair(WORLDS["silent"], 0.0)

    def test_multipath_parity(self):
        results = []
        for use_engine in (False, True):
            sim, client, _ep = build_multipath_world(loss_rate=0.002)
            tel = Telemetry()
            sim.set_telemetry(tel)
            engine = sim.batch_engine() if use_engine else None
            out = tcp_workflow(sim, client, engine=engine)
            results.append((out, observe(sim, tel)))
        assert results[0] == results[1]

    def test_rng_stream_identical_after_lossy_walks(self):
        # Beyond matching deliveries: the *entire* base draw stream must
        # stay aligned (each link crossed consumes exactly one draw).
        draws = []
        for use_engine in (False, True):
            world = world_plain(loss_rate=0.3, seed=13)
            sim = world.sim
            engine = sim.batch_engine() if use_engine else None
            tcp_workflow(sim, world.client, engine=engine, n=12)
            draws.append([sim._rng.random() for _ in range(16)])
        assert draws[0] == draws[1]


# ---------------------------------------------------------------------------
# run_udp_ladder parity
# ---------------------------------------------------------------------------


def scalar_ladder_reference(sim, client, ttls):
    """The documented scalar equivalent of run_udp_ladder."""
    from repro.netmodel.dns import query

    net = sim.net_context
    results = []
    for ttl in ttls:
        sport = net.next_ephemeral_port()
        probe = udp_packet(
            client.ip,
            ENDPOINT_IP,
            sport,
            53,
            payload=query(OK_DOMAIN, txid=(sport * 7919) & 0xFFFF).to_bytes(),
            ttl=ttl,
            net=net,
        )
        results.append(sim.send_from_client(probe))
    return results


def ladder_pair(builder, loss_rate, ttls=None, **world_kw):
    from repro.netmodel.dns import query

    if ttls is None:
        ttls = list(range(1, 12)) + [0, 64]
    results = []
    for use_engine in (False, True):
        sim, client, _ep = builder(loss_rate=loss_rate, **world_kw)
        tel = Telemetry()
        sim.set_telemetry(tel)
        if use_engine:
            engine = sim.batch_engine()
            out = engine.run_udp_ladder(
                client.ip,
                ENDPOINT_IP,
                53,
                ttls,
                lambda sport: query(
                    OK_DOMAIN, txid=(sport * 7919) & 0xFFFF
                ).to_bytes(),
            )
        else:
            out = scalar_ladder_reference(sim, client, ttls)
        flat = [[p.to_bytes() for p in probe] for probe in out]
        results.append((flat, observe(sim, tel)))
    assert results[0] == results[1]


class TestLadderParity:
    def test_lossless(self):
        ladder_pair(build_dns_world, 0.0)

    def test_lossy(self):
        ladder_pair(build_dns_world, 0.25)

    def test_silent_routers(self):
        ladder_pair(build_dns_world, 0.0, silent=(0, 2))

    def test_ladder_uses_fast_path_on_clean_world(self):
        sim, client, _ep = build_dns_world()
        tel = Telemetry()
        sim.set_telemetry(tel)
        engine = sim.batch_engine()
        engine.run_udp_ladder(
            client.ip, ENDPOINT_IP, 53, range(1, 9), lambda sport: b"x"
        )
        assert tel.counters.get("sim.batch_fast_path") == 8
        assert "sim.batch_scalar_fallback" not in tel.counters

    def test_ladder_falls_back_under_fault_plan(self):
        sim, client, _ep = build_dns_world()
        tel = Telemetry()
        sim.set_telemetry(tel)
        sim.set_fault_plan(PRESETS["lossy"])
        engine = sim.batch_engine()
        engine.run_udp_ladder(
            client.ip, ENDPOINT_IP, 53, range(1, 9), lambda sport: b"x"
        )
        assert tel.counters.get("sim.batch_scalar_fallback") == 8
        assert "sim.batch_fast_path" not in tel.counters


# ---------------------------------------------------------------------------
# Scalar fallback under fault plans (parity by construction, but the
# dispatch itself and the counters must behave)
# ---------------------------------------------------------------------------


class TestFallback:
    @pytest.mark.parametrize("preset", ["lossy", "ratelimit", "flaky"])
    def test_fault_plans_take_the_scalar_path(self, preset):
        world = world_device()
        sim = world.sim
        tel = Telemetry()
        sim.set_telemetry(tel)
        sim.set_fault_plan(PRESETS[preset])
        engine = sim.batch_engine()
        tcp_workflow(sim, world.client, engine=engine, n=4)
        assert tel.counters.get("sim.batch_scalar_fallback", 0) > 0
        assert "sim.batch_fast_path" not in tel.counters

    @pytest.mark.parametrize("preset", ["lossy", "ratelimit", "flaky"])
    def test_fault_plan_outcomes_match_direct_scalar(self, preset):
        # The fallback must not change behaviour: engine.send under a
        # plan == sim.send_from_client under the same plan.
        results = []
        for use_engine in (False, True):
            world = world_device()
            sim = world.sim
            tel = Telemetry()
            sim.set_telemetry(tel)
            sim.set_fault_plan(PRESETS[preset])
            engine = sim.batch_engine() if use_engine else None
            out = tcp_workflow(sim, world.client, engine=engine, n=8)
            results.append((out, observe(sim, tel)))
        assert results[0] == results[1]

    def test_capture_mode_falls_back(self):
        world = world_plain()
        sim = Simulator(world.topology, seed=7, capture=True)
        tel = Telemetry()
        sim.set_telemetry(tel)
        engine = sim.batch_engine()
        tcp_workflow(sim, world.client, engine=engine, n=2)
        assert tel.counters.get("sim.batch_scalar_fallback", 0) > 0
        assert "sim.batch_fast_path" not in tel.counters
        assert sim.capture  # the scalar path recorded the walk


# ---------------------------------------------------------------------------
# Fallback accounting: the counter is the audit trail for "which engine
# actually walked this probe", so it must tally exactly the probes the
# scalar engine ran — not approximately.
# ---------------------------------------------------------------------------


def count_forward_transits(sim):
    """Wrap ``sim._run_transit`` to tally client-probe walks.

    Only :func:`~repro.netsim.simulator.Simulator.send_from_client`
    creates POLICY_FORWARD transits, so counting them counts exactly
    the probes the *scalar* engine walked end to end (responses,
    expiries and injections use other policies).
    """
    from repro.netsim.simulator import POLICY_FORWARD

    counts = {"forward": 0}
    inner = sim._run_transit

    def counting(transit, deliveries):
        if transit.policy is POLICY_FORWARD:
            counts["forward"] += 1
        return inner(transit, deliveries)

    sim._run_transit = counting
    return counts


class TestFallbackAccounting:
    def drive(self, sim, n=6):
        tel = Telemetry()
        sim.set_telemetry(tel)
        counts = count_forward_transits(sim)
        engine = BatchEngine(sim)
        for i in range(n):
            packet = tcp_packet(
                CLIENT_IP,
                ENDPOINT_IP,
                40000 + i,
                80,
                flags=tcpmod.SYN,
                seq=100 + i,
                ttl=64,
                net=sim.net_context,
            )
            engine.send(packet)
        return tel.counters, counts["forward"]

    def test_fallback_counter_equals_scalar_walks_under_faults(self):
        world = world_plain()
        sim = world.sim
        sim.set_fault_plan(PRESETS["lossy"])
        counters, forwards = self.drive(sim, n=6)
        # Every probe fell back, and every fallback really went through
        # the scalar engine's transit walk — one POLICY_FORWARD transit
        # per probe, no fast-path leakage.
        assert counters.get("sim.batch_scalar_fallback") == 6
        assert forwards == 6
        assert "sim.batch_fast_path" not in counters

    def test_fallback_counter_equals_scalar_walks_under_capture(self):
        world = world_plain()
        sim = Simulator(world.topology, seed=7, capture=True)
        counters, forwards = self.drive(sim, n=4)
        assert counters.get("sim.batch_scalar_fallback") == 4
        assert forwards == 4
        assert "sim.batch_fast_path" not in counters

    def test_fast_path_never_enters_the_scalar_walk(self):
        world = world_plain()
        counters, forwards = self.drive(world.sim, n=5)
        # Clean world: the batched walk handles everything; the scalar
        # transit engine must see zero client probes.
        assert counters.get("sim.batch_fast_path") == 5
        assert "sim.batch_scalar_fallback" not in counters
        assert forwards == 0


# ---------------------------------------------------------------------------
# The exhaustive grid (--runslow)
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestFullParityGrid:
    @pytest.mark.parametrize("name", sorted(WORLDS))
    @pytest.mark.parametrize("loss", [0.0, 0.002, 0.2])
    @pytest.mark.parametrize("seed", [7, 23])
    def test_send_grid(self, name, loss, seed):
        def builder(loss_rate):
            return WORLDS[name](loss_rate=loss_rate, seed=seed)

        run_pair(builder, loss)

    @pytest.mark.parametrize("loss", [0.0, 0.002, 0.2])
    @pytest.mark.parametrize("silent", [(), (0,), (2, 4)])
    def test_ladder_grid(self, loss, silent):
        ladder_pair(build_dns_world, loss, silent=silent)

    @pytest.mark.parametrize("preset", ["light", "lossy", "ratelimit", "flaky", "chaos"])
    def test_fallback_grid(self, preset):
        results = []
        for use_engine in (False, True):
            world = world_device()
            sim = world.sim
            tel = Telemetry()
            sim.set_telemetry(tel)
            sim.set_fault_plan(PRESETS[preset])
            engine = sim.batch_engine() if use_engine else None
            out = tcp_workflow(sim, world.client, engine=engine, n=16)
            results.append((out, observe(sim, tel)))
        assert results[0] == results[1]
