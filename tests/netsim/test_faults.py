"""Fault injection: plan model, simulator threading, satellite fixes,
and the chaos invariant grid.

Four regression classes ride along with the fault subsystem (they are
the bugs the chaos harness flushed out):

* injected packets must be deep-copied at the dispatch boundary, or a
  device's cached injection template is corrupted across injections;
* device-forged packets to the server must walk the remaining links
  (per-link loss, TTL decrement) and the endpoint's responses must
  reverse-route back to the client;
* endpoint stacks must derive open ports from configured services
  instead of hardcoding 80/443;
* DNS probe retries must be fresh queries (new sport/txid) paced by
  backoff, not identical retransmissions at a frozen clock.
"""

import hashlib
import sys
from contextlib import contextmanager
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import (
    BLOCKED_DOMAIN,
    CLIENT_IP,
    CONTROL_DOMAIN,
    ENDPOINT_IP,
    OK_DOMAIN,
    build_linear_world,
    make_profile_device,
)

from repro.core.cenfuzz.runner import (
    CenFuzz,
    FuzzProbeOutcome,
    OUTCOME_RESPONSE,
    OUTCOME_RST,
    OUTCOME_TIMEOUT,
)
from repro.core.centrace import CenTrace, CenTraceConfig, PROTO_HTTP
from repro.devices.vendors import BY_DPI, KZ_STATE
from repro.netmodel import tcp as tcpmod
from repro.netmodel.packet import tcp_packet
from repro.netsim.faults import (
    FATE_FAIL_OPEN,
    FaultPlan,
    FaultState,
    FlakyDeviceProfile,
    IcmpRateLimitProfile,
    LossProfile,
    PathChurnProfile,
    PRESETS,
)
from repro.netsim.interfaces import LinkDevice, Verdict
from repro.netsim.simulator import (
    POLICY_INJECTED_TO_SERVER,
    EndpointStack,
    Transit,
)
from repro.netsim.topology import Endpoint, Router, Service

# ---------------------------------------------------------------------------
# FaultPlan model
# ---------------------------------------------------------------------------


class TestFaultPlanModel:
    def test_presets_resolve_by_name(self):
        for name in PRESETS:
            plan = FaultPlan.from_spec(name)
            assert plan.name == name

    def test_noop_detection(self):
        assert FaultPlan().is_noop()
        assert PRESETS["none"].is_noop()
        assert not PRESETS["lossy"].is_noop()

    def test_dict_round_trip(self):
        plan = PRESETS["chaos"]
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_spec_inline_json_and_file(self, tmp_path):
        blob = '{"name": "x", "loss": {"default_rate": 0.04}}'
        plan = FaultPlan.from_spec(blob)
        assert plan.loss.default_rate == 0.04
        path = tmp_path / "plan.json"
        path.write_text(blob)
        assert FaultPlan.from_spec(f"@{path}") == plan

    def test_from_spec_rejects_unknowns(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            FaultPlan.from_spec("no-such-preset")
        with pytest.raises(ValueError, match="unknown loss fields"):
            FaultPlan.from_dict({"loss": {"rate": 0.1}})

    def test_plans_are_hashable_cache_keys(self):
        a = FaultPlan.from_spec('{"loss": {"as_rates": {"64501": 0.1}}}')
        b = FaultPlan(loss=LossProfile(as_rates=(("64501", 0.1),)))
        assert hash(a) == hash(b) and a == b
        assert len({a, b}) == 1

    def test_loss_profile_precedence(self):
        profile = LossProfile(
            default_rate=0.01,
            as_rates=((64502, 0.2),),
            link_rates=(("r1", 0.5),),
        )
        r1 = Router("r1", "10.0.0.1", asn=64502)
        r2 = Router("r2", "10.0.0.2", asn=64502)
        r3 = Router("r3", "10.0.0.3", asn=64999)
        assert profile.rate_for(r1) == 0.5  # link name beats AS
        assert profile.rate_for(r2) == 0.2  # AS beats default
        assert profile.rate_for(r3) == 0.01
        assert profile.rate_for(None) == 0.01  # client delivery link
        assert profile.max_rate() == 0.5


# ---------------------------------------------------------------------------
# FaultState mechanics
# ---------------------------------------------------------------------------


class TestFaultState:
    def test_token_bucket_drains_and_refills(self):
        plan = FaultPlan(
            icmp_rate_limit=IcmpRateLimitProfile(capacity=2, refill_rate=0.5)
        )
        state = FaultState(plan, seed=1)
        router = Router("r0", "10.0.0.1", asn=1)
        assert not state.icmp_suppressed(router, 0.0)
        assert not state.icmp_suppressed(router, 0.0)
        assert state.icmp_suppressed(router, 0.0)  # bucket empty
        # 2 virtual seconds * 0.5 tokens/s = 1 token back.
        assert not state.icmp_suppressed(router, 2.0)
        assert state.icmp_suppressed(router, 2.0)
        assert state.counters.icmp_suppressed == 2

    def test_buckets_are_per_router(self):
        plan = FaultPlan(
            icmp_rate_limit=IcmpRateLimitProfile(capacity=1, refill_rate=0.0)
        )
        state = FaultState(plan, seed=1)
        r0 = Router("r0", "10.0.0.1", asn=1)
        r1 = Router("r1", "10.0.0.2", asn=1)
        assert not state.icmp_suppressed(r0, 0.0)
        assert not state.icmp_suppressed(r1, 0.0)
        assert state.icmp_suppressed(r0, 0.0)

    def test_churn_epoch_advances_and_changes_path_seed(self):
        plan = FaultPlan(churn=PathChurnProfile(rehash_after_packets=3))
        state = FaultState(plan, seed=1)
        for _ in range(2):
            state.note_client_packet(0.0)
        assert state.epoch == 0
        assert state.path_seed(7) == 7
        state.note_client_packet(0.0)
        assert state.epoch == 1
        assert state.path_seed(7) != 7
        assert state.counters.churn_epochs == 1

    def test_flaky_device_fate_honours_name_filter(self):
        plan = FaultPlan(
            flaky_devices=FlakyDeviceProfile(
                fail_open_rate=1.0, device_names=("target",)
            )
        )
        state = FaultState(plan, seed=1)

        class _D:
            def __init__(self, name):
                self.name = name

        assert state.device_fate(_D("target")) == FATE_FAIL_OPEN
        assert state.device_fate(_D("other")) == "inspect"

    def test_duplicates_are_independent_copies(self):
        plan = FaultPlan.from_spec(
            '{"delivery": {"duplicate_rate": 1.0}}'
        )
        state = FaultState(plan, seed=1)
        packet = tcp_packet(ENDPOINT_IP, CLIENT_IP, 80, 40000)
        from repro.netsim.simulator import Simulator

        shaped = state.shape_deliveries([packet], Simulator._clone)
        assert len(shaped) == 2
        assert shaped[0] is packet and shaped[1] is not packet
        assert shaped[1].ip is not packet.ip
        shaped[1].ip.ttl = 1
        assert packet.ip.ttl != 1

    def test_reset_restores_everything(self):
        state = FaultState(PRESETS["chaos"], seed=9)
        router = Router("r0", "10.0.0.1", asn=1)
        first_draws = [state.rng.random() for _ in range(4)]
        for _ in range(50):
            state.note_client_packet(5.0)
        state.icmp_suppressed(router, 0.0)
        assert state.epoch > 0
        state.reset(9)
        assert state.epoch == 0
        assert state.packets_sent == 0
        assert state._buckets == {}
        assert state.counters.icmp_suppressed == 0
        assert [state.rng.random() for _ in range(4)] == first_draws


# ---------------------------------------------------------------------------
# Simulator threading
# ---------------------------------------------------------------------------


class TestSimulatorFaults:
    def test_no_plan_is_exactly_the_old_simulator(self):
        world = build_linear_world(loss_rate=0.1, seed=3)
        baseline = [
            len(world.sim.send_from_client(self._syn(i))) for i in range(20)
        ]
        world.sim.set_fault_plan(FaultPlan())  # noop plan -> no FaultState
        assert world.sim._faults is None
        world.sim.reset()
        replay = [
            len(world.sim.send_from_client(self._syn(i))) for i in range(20)
        ]
        assert replay == baseline

    @staticmethod
    def _syn(i):
        return tcp_packet(
            CLIENT_IP, ENDPOINT_IP, 40000 + i, 80, flags=tcpmod.SYN, seq=1
        )

    def test_per_link_loss_uses_profile_rates(self):
        world = build_linear_world(seed=5)
        # 100% loss on the link into r2: nothing ever reaches the
        # endpoint, while TTL<=2 probes still get their ICMP back.
        world.sim.set_fault_plan(
            FaultPlan(loss=LossProfile(link_rates=(("r2", 1.0),)))
        )
        full = world.sim.send_from_client(self._syn(0))
        assert full == []
        short = tcp_packet(
            CLIENT_IP, ENDPOINT_IP, 41000, 80, flags=tcpmod.SYN, seq=1, ttl=2
        )
        assert world.sim.send_from_client(short)  # ICMP from r1

    def test_loss_profile_replaces_uniform_loss_rate(self):
        # Satellite audit (PR 6): installing a loss profile REPLACES
        # Simulator.loss_rate wholesale — it is never composed with the
        # uniform rate. A zero-rate profile on a loss_rate=1.0 world
        # must deliver everything; the inverse must lose everything.
        world = build_linear_world(loss_rate=1.0, seed=7)
        world.sim.set_fault_plan(
            FaultPlan(loss=LossProfile(default_rate=0.0))
        )
        assert world.sim.send_from_client(self._syn(0)), (
            "a 0.0-rate profile must override uniform loss_rate=1.0"
        )

        world = build_linear_world(loss_rate=0.0, seed=7)
        world.sim.set_fault_plan(
            FaultPlan(loss=LossProfile(default_rate=1.0))
        )
        assert world.sim.send_from_client(self._syn(1)) == [], (
            "a 1.0-rate profile must lose packets despite loss_rate=0.0"
        )

    def test_loss_profile_rolls_never_touch_base_rng(self):
        # Profile rolls draw from the dedicated fault RNG: walking
        # packets under a lossy profile must not advance the base
        # stream by a single draw.
        world = build_linear_world(loss_rate=0.0, seed=11)
        world.sim.set_fault_plan(
            FaultPlan(loss=LossProfile(default_rate=0.5))
        )
        before = world.sim._rng.getstate()
        for i in range(10):
            world.sim.send_from_client(self._syn(i))
        assert world.sim._rng.getstate() == before

    def test_icmp_rate_limited_router_goes_silent(self):
        world = build_linear_world(seed=5)
        world.sim.set_fault_plan(
            FaultPlan(
                icmp_rate_limit=IcmpRateLimitProfile(
                    capacity=1, refill_rate=0.0
                )
            )
        )
        probe = tcp_packet(
            CLIENT_IP, ENDPOINT_IP, 42000, 80, flags=tcpmod.SYN, seq=1, ttl=1
        )
        assert world.sim.send_from_client(probe)  # token available
        assert world.sim.send_from_client(probe) == []  # suppressed
        assert world.sim._faults.counters.icmp_suppressed == 1

    def test_fail_open_lets_blocked_traffic_through(self):
        device = make_profile_device(KZ_STATE)  # in-path dropper
        world = build_linear_world(device=device, seed=5)
        world.sim.set_fault_plan(
            FaultPlan(flaky_devices=FlakyDeviceProfile(fail_open_rate=1.0))
        )
        tracer = CenTrace(
            world.sim,
            world.client,
            asdb=world.asdb,
            config=CenTraceConfig(repetitions=2),
        )
        result = tracer.measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        assert not result.blocked  # enforcement lapsed on every packet

    def test_fail_closed_drops_everything(self):
        device = make_profile_device(KZ_STATE)
        world = build_linear_world(device=device, seed=5)
        world.sim.set_fault_plan(
            FaultPlan(flaky_devices=FlakyDeviceProfile(fail_closed_rate=1.0))
        )
        # Even the innocuous control SYN dies at the device's link.
        assert world.sim.send_from_client(self._syn(0)) == []

    def test_delivery_duplication_reaches_client(self):
        world = build_linear_world(seed=5)
        world.sim.set_fault_plan(
            FaultPlan.from_spec('{"delivery": {"duplicate_rate": 1.0}}')
        )
        responses = world.sim.send_from_client(self._syn(0))
        assert len(responses) == 2  # SYN-ACK + duplicate
        assert responses[0].ip is not responses[1].ip

    def test_churn_epoch_advances_with_sends(self):
        world = build_linear_world(seed=5)
        world.sim.set_fault_plan(
            FaultPlan(churn=PathChurnProfile(rehash_after_packets=4))
        )
        for i in range(5):
            world.sim.send_from_client(self._syn(i))
        assert world.sim._faults.epoch >= 1

    def test_reset_makes_faulted_runs_bit_identical(self):
        """The executor's determinism guarantee, under the worst plan."""
        world = build_linear_world(seed=11)
        world.sim.set_fault_plan(PRESETS["chaos"])

        def run():
            world.sim.reset(123)
            out = []
            for i in range(30):
                for p in world.sim.send_from_client(self._syn(i)):
                    out.append(p.brief())
                world.sim.advance(0.5)
            return out

        assert run() == run()

    def test_set_fault_plan_survives_plain_reset(self):
        world = build_linear_world(seed=11)
        world.sim.set_fault_plan(PRESETS["ratelimit"])
        world.sim.reset()
        assert world.sim._faults is not None
        assert world.sim._faults.plan is PRESETS["ratelimit"]


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------


class _TemplateInjector(LinkDevice):
    """On-path injector that (incorrectly, per the old bug) reuses one
    cached template packet for every injection."""

    name = "template-injector"
    in_path = False

    def __init__(self):
        self.template = tcp_packet(
            ENDPOINT_IP,
            CLIENT_IP,
            80,
            0,  # dport patched per flow below
            flags=tcpmod.RST,
            seq=1,
            ttl=64,
        )
        self.injections = 0

    def inspect(self, packet, ctx):
        if packet.is_tcp and packet.tcp.payload:
            self.injections += 1
            self.template.tcp = tcpmod.TCPSegment(
                sport=packet.tcp.dport,
                dport=packet.tcp.sport,
                seq=1,
                ack=packet.tcp.seq,
                flags=tcpmod.RST,
            )
            return Verdict(inject_to_client=[self.template], note="rst")
        return Verdict.pass_through()


class _ServerPoker(LinkDevice):
    """Injects a forged data segment toward the server on an unknown
    flow; a real stack RSTs that, and the RST must reach the client."""

    name = "server-poker"
    in_path = False

    def __init__(self, forged_ttl: int = 64):
        self.forged_ttl = forged_ttl

    def inspect(self, packet, ctx):
        if packet.is_tcp and packet.tcp.payload:
            forged = tcp_packet(
                packet.ip.src,
                packet.ip.dst,
                packet.tcp.sport + 1,  # not an established flow
                packet.tcp.dport,
                flags=tcpmod.PSH | tcpmod.ACK,
                seq=999,
                ttl=self.forged_ttl,
                payload=b"forged",
            )
            forged.injected = True
            return Verdict(inject_to_server=[forged], note="poke")
        return Verdict.pass_through()


class TestSatelliteRegressions:
    def _payload_responses(self, world, sport=45000):
        from repro.netsim.tcpstack import Connection

        conn = Connection(world.sim, world.client, ENDPOINT_IP, 80, sport=sport)
        assert conn.connect()
        result = conn.send_payload(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
        return result.received

    def test_injection_template_not_corrupted(self):
        device = _TemplateInjector()
        world = build_linear_world(device=device, device_link=2)
        self._payload_responses(world, sport=45000)
        self._payload_responses(world, sport=45001)
        assert device.injections == 2
        # The cached template's IP header must be untouched: the old
        # code rebound template.ip with a decremented TTL on arrival.
        assert device.template.ip.ttl == 64
        assert device.template.ip.src == ENDPOINT_IP

    def test_injected_to_server_elicits_rst_back_to_client(self):
        world = build_linear_world(device=_ServerPoker(), device_link=2)
        received = self._payload_responses(world)
        rsts = [
            p
            for p in received
            if p.is_tcp
            and p.tcp.flags & tcpmod.RST
            and p.tcp.dport == 45001  # reply to the forged flow
        ]
        assert rsts, "endpoint's RST for the forged flow must reach us"
        assert rsts[0].ip.src == ENDPOINT_IP

    def test_injected_to_server_dies_on_ttl_expiry(self):
        # Device at link 2, three routers + endpoint still ahead; a
        # forged TTL of 2 expires mid-path and dies silently.
        world = build_linear_world(
            device=_ServerPoker(forged_ttl=2), device_link=2
        )
        received = self._payload_responses(world)
        assert not any(
            p.is_tcp and p.tcp.flags & tcpmod.RST and p.tcp.dport == 45001
            for p in received
        )

    @staticmethod
    def _forged():
        forged = tcp_packet(
            CLIENT_IP,
            ENDPOINT_IP,
            47001,
            80,
            flags=tcpmod.PSH | tcpmod.ACK,
            seq=999,
            ttl=64,
            payload=b"forged",
        )
        forged.injected = True
        return forged

    def test_injected_to_server_rolls_loss_per_remaining_link(self):
        world = build_linear_world()
        sim = world.sim
        sim._capture_enabled = True
        forged = self._forged()
        route = sim.topology.route_between(CLIENT_IP, ENDPOINT_IP)
        path = route.select(forged.flow_key(), seed=sim.seed)
        # 100% loss on the link into r4 (past an injection at link 2):
        # the forged packet must die there, not survive because the
        # single legacy loss roll happened to pass.
        sim.set_fault_plan(
            FaultPlan(loss=LossProfile(link_rates=(("r4", 1.0),)))
        )
        deliveries = []
        sim._run_transit(
            Transit(forged, path, 2, POLICY_INJECTED_TO_SERVER, CLIENT_IP),
            deliveries,
        )
        assert deliveries == []
        assert sim._faults.counters.packets_lost == 1
        assert not any(r.event == "delivered" for r in sim.capture)
        # Links at or before the injection point are never rolled: the
        # forged packet only crosses the remaining links.
        sim.set_fault_plan(
            FaultPlan(
                loss=LossProfile(
                    link_rates=(("r0", 1.0), ("r1", 1.0), ("r2", 1.0))
                )
            )
        )
        sim.capture.clear()
        deliveries = []
        sim._run_transit(
            Transit(
                self._forged(), path, 2, POLICY_INJECTED_TO_SERVER, CLIENT_IP
            ),
            deliveries,
        )
        assert any(r.event == "delivered" for r in sim.capture)

    def test_endpoint_without_server_refuses_http_syn(self):
        endpoint = Endpoint("dns-only", "100.96.0.9", asn=1, server=None)
        stack = EndpointStack(endpoint)
        syn = tcp_packet(
            CLIENT_IP, endpoint.ip, 40000, 80, flags=tcpmod.SYN, seq=5
        )
        replies = stack.receive(syn, 0.0)
        assert len(replies) == 1
        assert replies[0].tcp.flags & tcpmod.RST

    def test_endpoint_open_ports_follow_services(self):
        endpoint = Endpoint("svc", "100.96.0.9", asn=1, server=None)
        endpoint.add_service(Service(port=8080, protocol="http"))
        stack = EndpointStack(endpoint)
        assert stack.open_ports == {8080}
        syn = tcp_packet(
            CLIENT_IP, endpoint.ip, 40000, 8080, flags=tcpmod.SYN, seq=5
        )
        replies = stack.receive(syn, 0.0)
        assert replies[0].tcp.flags & tcpmod.SYN
        assert replies[0].tcp.flags & tcpmod.ACK

    def test_web_endpoint_still_serves_80_and_443(self):
        world = build_linear_world()
        stack = EndpointStack(world.endpoint)
        assert {80, 443} <= stack.open_ports

    def test_dns_retries_are_fresh_paced_queries(self):
        from repro.netmodel.netctx import NetContext

        class _SilentSim:
            clock = 0.0

            def __init__(self):
                self.sent = []
                self.net_context = NetContext()

            def send_from_client(self, packet):
                self.sent.append(packet)
                return []

            def advance(self, seconds):
                self.clock += seconds

            def batch_engine(self):
                # The engine surface CenTrace relies on, delegating to
                # send_from_client so the stub still sees every packet.
                sim = self

                class _EngineStub:
                    def send(self, packet, wire_bytes=None):
                        return sim.send_from_client(packet)

                    @contextmanager
                    def batch(self, label):
                        yield

                return _EngineStub()

        sim = _SilentSim()
        world = build_linear_world()
        tracer = CenTrace(
            sim,
            world.client,
            config=CenTraceConfig(probe_retries=2, retry_base_wait=1.0),
        )
        observation = tracer._probe_dns(ENDPOINT_IP, "q.example", ttl=3)
        assert len(sim.sent) == 3
        sports = {p.udp.sport for p in sim.sent}
        payloads = {p.udp.payload for p in sim.sent}
        ip_ids = {p.ip.identification for p in sim.sent}
        assert len(sports) == 3, "each retry needs a fresh source port"
        assert len(payloads) == 3, "each retry needs a fresh DNS txid"
        assert len(ip_ids) == 3
        assert sim.clock == pytest.approx(1.0 + 2.0)  # exponential pacing
        assert observation.retries_used == 2


# ---------------------------------------------------------------------------
# Tool hardening: degradation accounting
# ---------------------------------------------------------------------------


class TestDegradationAccounting:
    def test_rate_limited_world_marks_result_degraded(self):
        world = build_linear_world(seed=5)
        world.sim.set_fault_plan(
            FaultPlan(
                icmp_rate_limit=IcmpRateLimitProfile(
                    capacity=1, refill_rate=0.0
                )
            )
        )
        tracer = CenTrace(
            world.sim,
            world.client,
            asdb=world.asdb,
            config=CenTraceConfig(repetitions=2),
        )
        # Classification must complete (whatever it concludes about a
        # world this hostile) and carry the degradation evidence.
        result = tracer.measure(ENDPOINT_IP, OK_DOMAIN, PROTO_HTTP)
        assert result.brief()
        all_sweeps = result.sweeps_control + result.sweeps_test
        assert any(s.probes_retried > 0 for s in all_sweeps)
        assert any(s.degraded for s in all_sweeps)
        assert result.degraded

    def test_finalize_sweep_counts_silent_mid_path_hops(self):
        from repro.core.centrace.results import (
            ProbeObservation,
            ResponseSummary,
            TraceSweep,
        )

        world = build_linear_world()
        tracer = CenTrace(world.sim, world.client)
        icmp = lambda ttl: ResponseSummary(  # noqa: E731
            kind="icmp", src_ip=f"100.80.{ttl - 1}.1", arrival_ttl=60
        )
        sweep = TraceSweep(domain=OK_DOMAIN, protocol=PROTO_HTTP)
        sweep.probes = [
            ProbeObservation(ttl=1, responses=[icmp(1)]),
            ProbeObservation(ttl=2),  # silent: rate-limited router
            ProbeObservation(ttl=3, responses=[icmp(3)], retries_used=1),
            ProbeObservation(ttl=4),  # silent but *above* the last
        ]
        tracer._finalize_sweep(sweep, ENDPOINT_IP)
        assert sweep.probes_retried == 1
        assert sweep.hops_rate_limited == 1  # ttl=2 only; ttl=4 is tail
        assert sweep.degraded

    def test_clean_run_is_not_degraded(self):
        world = build_linear_world()
        tracer = CenTrace(
            world.sim,
            world.client,
            asdb=world.asdb,
            config=CenTraceConfig(repetitions=2),
        )
        result = tracer.measure(ENDPOINT_IP, OK_DOMAIN, PROTO_HTTP)
        assert not result.degraded
        for sweep in result.sweeps_control + result.sweeps_test:
            assert sweep.probes_retried == 0
            assert sweep.hops_rate_limited == 0

    def test_retry_backoff_advances_virtual_clock(self):
        world = build_linear_world(device=make_profile_device(KZ_STATE))
        tracer = CenTrace(
            world.sim,
            world.client,
            config=CenTraceConfig(
                repetitions=1, probe_retries=2, retry_base_wait=10.0
            ),
        )
        before = world.sim.clock
        sweep = tracer.sweep(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
        # Dropped probes retried with 10s + 20s waits: far more virtual
        # time than the unpaced version would ever accumulate.
        timed_out = [p for p in sweep.probes if p.timed_out]
        assert timed_out
        assert all(p.retries_used == 2 for p in timed_out)
        assert world.sim.clock - before >= 30.0

    def test_fuzz_ambiguous_timeout_reprobed_once(self):
        world = build_linear_world()
        fuzz = CenFuzz(world.sim, world.client)
        script = [
            FuzzProbeOutcome(OUTCOME_TIMEOUT),  # ambiguous first answer
            FuzzProbeOutcome(OUTCOME_RESPONSE),  # the re-probe's verdict
        ]
        calls = []
        fuzz.probe = lambda *args: (calls.append(args), script.pop(0))[1]
        baseline = FuzzProbeOutcome(OUTCOME_RESPONSE)
        outcome = fuzz._probe_confirmed(ENDPOINT_IP, object(), "d", baseline)
        assert len(calls) == 2
        assert outcome.outcome == OUTCOME_RESPONSE
        assert outcome.reprobed

    def test_fuzz_expected_timeout_not_reprobed(self):
        world = build_linear_world()
        fuzz = CenFuzz(world.sim, world.client)
        calls = []
        fuzz.probe = lambda *args: (
            calls.append(args),
            FuzzProbeOutcome(OUTCOME_TIMEOUT),
        )[1]
        baseline = FuzzProbeOutcome(OUTCOME_TIMEOUT)  # dropper path
        outcome = fuzz._probe_confirmed(ENDPOINT_IP, object(), "d", baseline)
        assert len(calls) == 1
        assert not outcome.reprobed
        # Non-timeout outcomes are never re-probed either.
        calls.clear()
        fuzz.probe = lambda *args: (
            calls.append(args),
            FuzzProbeOutcome(OUTCOME_RST),
        )[1]
        outcome = fuzz._probe_confirmed(
            ENDPOINT_IP, object(), "d", FuzzProbeOutcome(OUTCOME_RESPONSE)
        )
        assert len(calls) == 1


# ---------------------------------------------------------------------------
# Chaos invariant grid
# ---------------------------------------------------------------------------

# The invariants (ISSUE acceptance criteria): under every plan in the
# grid, (1) an in-path dropper's blocking hop is attributed within +-1
# hop as long as no single link loses more than 5% of packets, (2) the
# tools classify without raising, and (3) serial and parallel campaign
# output stays byte-identical. The fast subset runs in the default
# pytest invocation; the full grid (every preset x both device types)
# runs under `make chaos` / --runslow.

_FAST_GRID = ["none", "light", "ratelimit", "churn"]
_FULL_GRID = sorted(PRESETS)


def _chaos_measure(plan_name, profile, seed):
    device = make_profile_device(profile)
    world = build_linear_world(device=device, device_link=2, seed=seed)
    world.sim.set_fault_plan(PRESETS[plan_name])
    tracer = CenTrace(
        world.sim,
        world.client,
        asdb=world.asdb,
        config=CenTraceConfig(repetitions=3),
    )
    result = tracer.measure(ENDPOINT_IP, BLOCKED_DOMAIN, PROTO_HTTP)
    return world, result


def _assert_invariants(plan_name, world, result):
    plan = PRESETS[plan_name]
    max_loss = plan.loss.max_rate() if plan.loss is not None else 0.0
    if not result.valid:
        # A valid=False outcome is an allowed degradation, never a
        # crash; it only happens when faults broke the control trace.
        assert plan_name != "none"
        return
    if max_loss <= 0.05 and result.blocked and result.terminating_ttl:
        expected = world.device_link + 1  # hop the device's link leads to
        assert abs(result.terminating_ttl - expected) <= 1, (
            f"plan {plan_name}: attributed hop {result.terminating_ttl}, "
            f"device at {expected}"
        )


@pytest.mark.chaos
@pytest.mark.parametrize("plan_name", _FAST_GRID)
def test_chaos_dropper_attribution(plan_name):
    world, result = _chaos_measure(plan_name, KZ_STATE, seed=7)
    _assert_invariants(plan_name, world, result)


@pytest.mark.chaos
@pytest.mark.slow
@pytest.mark.parametrize("seed", [7, 11])
@pytest.mark.parametrize("profile", [KZ_STATE, BY_DPI], ids=["drop", "rst"])
@pytest.mark.parametrize("plan_name", _FULL_GRID)
def test_chaos_full_grid(plan_name, profile, seed):
    world, result = _chaos_measure(plan_name, profile, seed)
    if profile is KZ_STATE:
        _assert_invariants(plan_name, world, result)
    # For the injector the invariant is just "classify, don't crash";
    # result.brief() exercises the whole result surface.
    assert result.brief()


def _campaign_digests(tmp_path, plan):
    """Serial and parallel campaign digests for one fault plan."""
    from repro.experiments.campaign import CampaignConfig, run_campaign
    from repro.geo.countries import build_world
    from repro.persist import save_campaign

    from ..helpers_golden import digest_dir

    def digest(workers, tag):
        world = build_world("AZ", seed=7, scale=0.35, fault_plan=plan)
        config = CampaignConfig(
            repetitions=2, max_endpoints=3, fuzz_max_endpoints=1
        )
        campaign = run_campaign(world, config, workers=workers)
        out = tmp_path / tag
        save_campaign(campaign, str(out))
        return digest_dir(out), campaign

    serial, campaign = digest(None, "serial")
    parallel, _ = digest(2, "parallel")
    return serial, parallel, campaign


@pytest.mark.chaos
def test_chaos_campaign_bit_identity(tmp_path):
    """PR 1's serial/parallel guarantee extended to faulted worlds."""
    plan = PRESETS["chaos"]
    serial, parallel, campaign = _campaign_digests(tmp_path, plan)
    assert serial == parallel
    # And the plan actually took: the spec carries it to workers.
    assert campaign.world.spec.fault_plan == plan


@pytest.mark.chaos
@pytest.mark.slow
@pytest.mark.parametrize(
    "plan_name", [n for n in _FULL_GRID if n not in ("none", "chaos")]
)
def test_chaos_campaign_bit_identity_full_grid(tmp_path, plan_name):
    plan = PRESETS[plan_name]
    serial, parallel, _ = _campaign_digests(tmp_path, plan)
    assert serial == parallel


@pytest.mark.chaos
def test_faulted_worldspec_round_trip():
    from repro.geo.countries import WorldSpec, build_world

    plan = PRESETS["light"]
    world = build_world("AZ", seed=7, scale=0.35, fault_plan=plan)
    assert world.spec == WorldSpec(
        country="AZ", seed=7, scale=0.35, fault_plan=plan
    )
    replica = world.spec.build()
    assert replica.sim.fault_plan == plan
    assert replica.sim._faults is not None
