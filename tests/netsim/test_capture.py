"""The simulator's pcap-like capture log."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))
from helpers import (
    BLOCKED_DOMAIN,
    ENDPOINT_IP,
    OK_DOMAIN,
    build_linear_world,
    make_profile_device,
)

from repro.devices.vendors import KZ_STATE
from repro.netmodel.http import HTTPRequest
from repro.netsim.simulator import Simulator
from repro.netsim.tcpstack import open_connection


def _world_with_capture(device=None):
    world = build_linear_world(device=device, device_link=2)
    world.sim = Simulator(world.topology, seed=7, capture=True)
    return world


class TestCapture:
    def test_disabled_by_default(self):
        world = build_linear_world()
        conn = open_connection(world.sim, world.client, ENDPOINT_IP, 80)
        conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build(), ttl=2)
        assert world.sim.capture == []

    def test_records_expiry_and_arrival(self):
        world = _world_with_capture()
        conn = open_connection(world.sim, world.client, ENDPOINT_IP, 80)
        conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build(), ttl=2)
        events = {record.event for record in world.sim.capture}
        assert "ttl-expired" in events
        assert "arrived" in events

    def test_records_delivery_to_endpoint(self):
        world = _world_with_capture()
        conn = open_connection(world.sim, world.client, ENDPOINT_IP, 80)
        conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build(), ttl=64)
        deliveries = [r for r in world.sim.capture if r.event == "delivered"]
        assert deliveries
        assert deliveries[0].location == "endpoint"

    def test_records_device_actions_with_note(self):
        device = make_profile_device(KZ_STATE)
        world = _world_with_capture(device=device)
        conn = open_connection(world.sim, world.client, ENDPOINT_IP, 80)
        conn.send_payload(HTTPRequest.normal(BLOCKED_DOMAIN).build(), ttl=64)
        actions = [r for r in world.sim.capture if r.event == "device"]
        assert actions
        assert "triggered:" in actions[0].detail

    def test_clock_stamps_monotonic(self):
        world = _world_with_capture()
        conn = open_connection(world.sim, world.client, ENDPOINT_IP, 80)
        for ttl in (1, 2, 3):
            conn.send_payload(HTTPRequest.normal(OK_DOMAIN).build(), ttl=ttl)
        stamps = [record.clock for record in world.sim.capture]
        assert stamps == sorted(stamps)
