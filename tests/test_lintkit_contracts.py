"""Phase-2 cross-module rule families: the telemetry registry contract
(RP601-RP603), serializer schema drift (RP701-RP703), async safety in
the campaign service (RP801-RP802), the typed-error contract
(RP901-RP902), and stale-pragma detection (RP001). Each rule has a
violating fixture and the real tree holds a per-family clean gate.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools import lintkit  # noqa: E402

from tests.test_lintkit import lint_module, rule_ids, write_module  # noqa: E402

#: A minimal well-formed registry fixture (every table present).
REGISTRY_SRC = (
    "COUNTERS = {'sim.packets': 'packets sent'}\n"
    "SPANS = {'campaign': 'one campaign'}\n"
    "EVENTS = {'stage': 'stage transition'}\n"
    "DYNAMIC_COUNTERS = {'faults.': 'per-fault-kind counters'}\n"
    "DYNAMIC_SPANS = {}\n"
    "INDIRECT_COUNTERS = set()\n"
    "NONLITERAL_NAME_SITES = {}\n"
)


def lint_with_registry(tmp_path, registry_src, mod_src, select):
    write_module(tmp_path, "repro.telemetry_registry", registry_src)
    return lint_module(tmp_path, "repro.mod", mod_src, select=select)


# ---------------------------------------------------------------------------
# RP601-RP603 telemetry registry


class TestTelemetryRegistry:
    def test_unregistered_name_flagged_with_hint(self, tmp_path):
        found = lint_with_registry(
            tmp_path,
            REGISTRY_SRC,
            "def run(tel):\n    tel.count('sim.packetz')\n",
            select=["RP601"],
        )
        assert rule_ids(found) == ["RP601"]
        assert "did you mean 'sim.packets'" in found[0].message

    def test_registered_names_clean(self, tmp_path):
        found = lint_with_registry(
            tmp_path,
            REGISTRY_SRC,
            "def run(tel):\n"
            "    tel.count('sim.packets')\n"
            "    tel.span('campaign')\n"
            "    tel.event(kind='stage')\n",
            select=["RP601"],
        )
        assert found == []

    def test_dynamic_prefix_covers_counter(self, tmp_path):
        found = lint_with_registry(
            tmp_path,
            REGISTRY_SRC,
            "def run(tel):\n    tel.count('faults.timeout')\n",
            select=["RP601"],
        )
        assert found == []

    def test_missing_registry_module_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.mod",
            "def run(tel):\n    tel.count('anything')\n",
            select=["RP601"],
        )
        assert rule_ids(found) == ["RP601"]
        assert "no" in found[0].message and "registry" in found[0].message

    def test_computed_name_flagged(self, tmp_path):
        found = lint_with_registry(
            tmp_path,
            REGISTRY_SRC,
            "def run(tel, kind):\n    tel.count(f'faults.{kind}')\n",
            select=["RP602"],
        )
        assert rule_ids(found) == ["RP602"]
        assert "repro.mod:run" in found[0].message

    def test_whitelisted_computed_site_clean(self, tmp_path):
        registry = REGISTRY_SRC.replace(
            "NONLITERAL_NAME_SITES = {}",
            "NONLITERAL_NAME_SITES = "
            "{'repro.mod:run': 'kind is a closed enum'}",
        )
        found = lint_with_registry(
            tmp_path,
            registry,
            "def run(tel, kind):\n    tel.count(f'faults.{kind}')\n",
            select=["RP602"],
        )
        assert found == []

    def test_stale_entry_flagged_at_registry_line(self, tmp_path):
        found = lint_with_registry(
            tmp_path,
            REGISTRY_SRC,
            "def run(tel):\n"
            "    tel.span('campaign')\n"
            "    tel.event(kind='stage')\n",
            select=["RP603"],
        )
        # 'sim.packets' is declared but never emitted.
        assert rule_ids(found) == ["RP603"]
        assert "'sim.packets'" in found[0].message
        assert found[0].path.as_posix().endswith("telemetry_registry.py")
        assert found[0].line == 1  # the COUNTERS key literal's line

    def test_indirect_counter_exempt_from_staleness(self, tmp_path):
        registry = REGISTRY_SRC.replace(
            "INDIRECT_COUNTERS = set()",
            "INDIRECT_COUNTERS = {'sim.packets'}",
        )
        found = lint_with_registry(
            tmp_path,
            registry,
            "def run(tel):\n"
            "    tel.span('campaign')\n"
            "    tel.event(kind='stage')\n",
            select=["RP603"],
        )
        assert found == []

    def test_real_tree_clean(self):
        violations, _ = lintkit.lint(
            [REPO_ROOT / "src"],
            root=REPO_ROOT,
            select=["RP601", "RP602", "RP603"],
        )
        assert violations == []


# ---------------------------------------------------------------------------
# RP701-RP703 serializer drift


DATACLASS_SRC = (
    "from dataclasses import dataclass\n"
    "from typing import Dict\n"
    "@dataclass\n"
    "class Rec:\n"
    "    a: int\n"
    "    b: str\n"
)


class TestSerializerDrift:
    def test_dropped_field_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.codec",
            DATACLASS_SRC
            + "def rec_to_dict(rec: Rec) -> Dict:\n"
            "    return {'a': rec.a}\n",
            select=["RP701"],
        )
        assert rule_ids(found) == ["RP701"]
        assert "Rec.b" in found[0].message

    def test_declared_exclusion_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.codec",
            DATACLASS_SRC
            + "SERIALIZER_EXCLUDED_FIELDS = {'rec': ('b',)}\n"
            "def rec_to_dict(rec: Rec) -> Dict:\n"
            "    return {'a': rec.a}\n",
            select=["RP701"],
        )
        assert found == []

    def test_written_but_never_read_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.codec",
            DATACLASS_SRC
            + "def rec_to_dict(rec: Rec) -> Dict:\n"
            "    return {'a': rec.a, 'b': rec.b, 'version': 1}\n"
            "def rec_from_dict(data: Dict) -> Rec:\n"
            "    return Rec(a=data['a'], b='')\n",
            select=["RP702"],
        )
        assert rule_ids(found) == ["RP702"]
        assert "'b'" in found[0].message and "never read" in found[0].message

    def test_read_but_never_written_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.codec",
            DATACLASS_SRC
            + "SERIALIZER_EXCLUDED_FIELDS = {'rec': ('b',)}\n"
            "def rec_to_dict(rec: Rec) -> Dict:\n"
            "    return {'a': rec.a}\n"
            "def rec_from_dict(data: Dict) -> Rec:\n"
            "    return Rec(a=data['a'], b=data.get('b', ''))\n",
            select=["RP702"],
        )
        assert rule_ids(found) == ["RP702"]
        assert "never written" in found[0].message

    def test_symmetric_pair_with_version_meta_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.codec",
            DATACLASS_SRC
            + "def rec_to_dict(rec: Rec) -> Dict:\n"
            "    return {'a': rec.a, 'b': rec.b, 'version': 1}\n"
            "def rec_from_dict(data: Dict) -> Rec:\n"
            "    return Rec(a=data['a'], b=data.get('b', ''))\n",
            select=["RP701", "RP702", "RP703"],
        )
        assert found == []

    def test_unknown_key_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.codec",
            DATACLASS_SRC
            + "def rec_to_dict(rec: Rec) -> Dict:\n"
            "    return {'a': rec.a, 'b': rec.b, 'bb': rec.b}\n",
            select=["RP703"],
        )
        assert rule_ids(found) == ["RP703"]
        assert "'bb'" in found[0].message

    def test_accumulator_variable_writes_counted(self, tmp_path):
        # data = {...}; data['b'] = ...; return data
        found = lint_module(
            tmp_path,
            "repro.codec",
            DATACLASS_SRC
            + "def rec_to_dict(rec: Rec) -> Dict:\n"
            "    data = {'a': rec.a}\n"
            "    data['b'] = rec.b\n"
            "    return data\n",
            select=["RP701"],
        )
        assert found == []

    def test_dispatcher_without_dataclass_skipped(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.codec",
            "from typing import Dict\n"
            "def unit_to_dict(kind: str, result) -> Dict:\n"
            "    return {'kind': kind}\n",
            select=["RP701", "RP702", "RP703"],
        )
        assert found == []

    def test_real_tree_clean(self):
        violations, _ = lintkit.lint(
            [REPO_ROOT / "src"],
            root=REPO_ROOT,
            select=["RP701", "RP702", "RP703"],
        )
        assert violations == []


# ---------------------------------------------------------------------------
# RP801-RP802 async safety


class TestAsyncSafety:
    def test_time_sleep_in_coroutine_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.service.mod",
            "import time\n"
            "async def run():\n"
            "    time.sleep(1)\n",
            select=["RP801"],
        )
        assert rule_ids(found) == ["RP801"]
        assert "asyncio.sleep" in found[0].message

    def test_sync_file_io_in_coroutine_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.service.mod",
            "async def run(path):\n"
            "    return path.read_text()\n",
            select=["RP801"],
        )
        assert rule_ids(found) == ["RP801"]

    def test_direct_executor_call_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.service.mod",
            "async def run(executor, unit):\n"
            "    return executor.run_unit(unit)\n",
            select=["RP801"],
        )
        assert rule_ids(found) == ["RP801"]
        assert "run_in_executor" in found[0].message

    def test_asyncio_sleep_and_sync_helper_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.service.mod",
            "import asyncio, time\n"
            "async def run():\n"
            "    await asyncio.sleep(0)\n"
            "def sync_helper():\n"
            "    time.sleep(0)\n",  # plain def: sanctioned blocking section
            select=["RP801"],
        )
        assert found == []

    def test_non_service_module_out_of_scope(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.core.mod",
            "import time\nasync def run():\n    time.sleep(1)\n",
            select=["RP801"],
        )
        assert found == []

    def test_check_then_act_across_await_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.service.mod",
            "class S:\n"
            "    async def submit(self, coro):\n"
            "        if self._state is None:\n"
            "            await coro\n"
            "            self._state = 1\n",
            select=["RP802"],
        )
        assert rule_ids(found) == ["RP802"]
        assert "check-then-act" in found[0].message

    def test_snapshot_local_guard_flagged(self, tmp_path):
        # The PR 7 admission-race shape: guard on a local snapshot of
        # self._states, mutate the dict after awaiting.
        found = lint_module(
            tmp_path,
            "repro.service.mod",
            "class S:\n"
            "    async def submit(self, key, coro):\n"
            "        state = self._states.get(key)\n"
            "        if state is None:\n"
            "            await coro\n"
            "            self._states[key] = 1\n",
            select=["RP802"],
        )
        assert rule_ids(found) == ["RP802"]

    def test_reread_after_await_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.service.mod",
            "class S:\n"
            "    async def submit(self, coro):\n"
            "        if self._state is None:\n"
            "            await coro\n"
            "            if self._state is None:\n"
            "                self._state = 1\n",
            select=["RP802"],
        )
        assert found == []

    def test_clear_before_await_clean(self, tmp_path):
        # The stop() idiom: snapshot, clear the shared slot, then await
        # the snapshot — no stale write after the await.
        found = lint_module(
            tmp_path,
            "repro.service.mod",
            "class S:\n"
            "    async def stop(self):\n"
            "        task = self._task\n"
            "        self._task = None\n"
            "        if task is not None:\n"
            "            await task\n",
            select=["RP802"],
        )
        assert found == []

    def test_real_tree_clean(self):
        violations, _ = lintkit.lint(
            [REPO_ROOT / "src"],
            root=REPO_ROOT,
            select=["RP801", "RP802"],
        )
        assert violations == []


# ---------------------------------------------------------------------------
# RP901-RP902 typed-error contract


class TestErrorContract:
    def test_raw_valueerror_in_persist_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.persist",
            "def load(data):\n"
            "    raise ValueError('bad payload')\n",
            select=["RP901"],
        )
        assert rule_ids(found) == ["RP901"]
        assert "ValueError" in found[0].message

    def test_typed_error_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.persist",
            "class PersistError(ValueError):\n"
            "    pass\n"
            "def load(data):\n"
            "    raise PersistError('bad payload')\n",
            select=["RP901"],
        )
        assert found == []

    def test_imported_typed_error_resolved(self, tmp_path):
        write_module(
            tmp_path,
            "repro.persist",
            "class PersistError(ValueError):\n    pass\n",
        )
        found = lint_module(
            tmp_path,
            "repro.store.facts",
            "from ..persist import PersistError\n"
            "def load(data):\n"
            "    raise PersistError('bad payload')\n",
            select=["RP901"],
        )
        assert found == []

    def test_impostor_error_class_flagged(self, tmp_path):
        # A same-named class from an unrelated module does not satisfy
        # the contract: the CLI handler catches the canonical one.
        write_module(
            tmp_path,
            "repro.other",
            "class PersistError(ValueError):\n    pass\n",
        )
        found = lint_module(
            tmp_path,
            "repro.store.facts",
            "from repro.other import PersistError\n"
            "def load(data):\n"
            "    raise PersistError('bad payload')\n",
            select=["RP901"],
        )
        assert rule_ids(found) == ["RP901"]

    def test_pragma_waives_programmer_contract_raise(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.persist",
            "def dispatch(kind):\n"
            "    raise TypeError(  # lint: ignore[RP901] -- unreachable\n"
            "        kind\n"
            "    )\n",
            select=["RP901"],
        )
        assert found == []

    def test_out_of_scope_module_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.core.mod",
            "def f():\n    raise ValueError('fine here')\n",
            select=["RP901"],
        )
        assert found == []

    def test_missing_handler_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.cli",
            "def main(argv=None):\n"
            "    try:\n"
            "        return 0\n"
            "    except PersistError:\n"
            "        return 2\n",
            select=["RP902"],
        )
        assert rule_ids(found) == ["RP902"]
        assert "DriftError" in found[0].message

    def test_handler_without_exit_two_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.cli",
            "def main(argv=None):\n"
            "    try:\n"
            "        return 0\n"
            "    except (PersistError, DriftError):\n"
            "        return 1\n",
            select=["RP902"],
        )
        assert rule_ids(found) == ["RP902", "RP902"]
        assert all("exit 2" in v.message for v in found)

    def test_tuple_handler_with_exit_two_clean(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.cli",
            "import sys\n"
            "def main(argv=None):\n"
            "    try:\n"
            "        return 0\n"
            "    except (PersistError, DriftError) as exc:\n"
            "        print(exc, file=sys.stderr)\n"
            "        return 2\n",
            select=["RP902"],
        )
        assert found == []

    def test_real_tree_clean(self):
        violations, _ = lintkit.lint(
            [REPO_ROOT / "src"],
            root=REPO_ROOT,
            select=["RP901", "RP902"],
        )
        assert violations == []


# ---------------------------------------------------------------------------
# RP001 stale pragmas


class TestUnusedPragma:
    def test_stale_pragma_is_warning(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.mod",
            "X = 1  # lint: ignore[RP101] -- suppresses nothing\n",
            select=["RP001", "RP101"],
        )
        assert rule_ids(found) == ["RP001"]
        assert found[0].severity == "warning"
        assert "suppresses nothing" in found[0].message

    def test_used_pragma_not_flagged(self, tmp_path):
        found = lint_module(
            tmp_path,
            "repro.mod",
            "import time\n"
            "x = time.time()  # lint: ignore[RP101] -- fixture\n",
            select=["RP001", "RP101"],
        )
        assert found == []

    def test_select_subset_never_convicts_foreign_pragmas(self, tmp_path):
        # RP101 did not run, so its pragma cannot be proven stale.
        found = lint_module(
            tmp_path,
            "repro.mod",
            "X = 1  # lint: ignore[RP101] -- rule not selected\n",
            select=["RP001"],
        )
        assert found == []

    def test_warning_does_not_fail_exit_code(self, tmp_path, capsys):
        from tools.lintkit.__main__ import main as lintkit_main

        write_module(
            tmp_path,
            "repro.mod",
            "X = 1  # lint: ignore[RP101] -- stale\n",
        )
        assert lintkit_main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "RP001" in out and "[warning]" in out

    def test_real_tree_has_no_stale_pragmas(self):
        violations, _ = lintkit.lint(
            [REPO_ROOT / "src", REPO_ROOT / "tools", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT,
        )
        assert [v for v in violations if v.rule_id == "RP001"] == []
