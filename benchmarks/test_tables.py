"""Benches for Table 1 and Table 2."""

from conftest import run_once

from repro.experiments import table1, table2


def test_table1_centrace_summary(benchmark, bench_campaigns, report):
    """Table 1: CenTrace measurements per country."""
    result = run_once(benchmark, lambda: table1.run(campaigns=bench_campaigns))
    report(result)
    fractions = {row[0]: float(row[8]) for row in result.rows}
    assert fractions["KZ"] > fractions["RU"]


def test_table2_strategy_catalog(benchmark, report):
    """Table 2: CenFuzz strategies and permutation counts."""
    result = run_once(benchmark, table2.run)
    report(result)
    assert all(row[5] == "yes" for row in result.rows)
