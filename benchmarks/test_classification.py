"""Bench: §7.1 vendor classification of unlabeled devices."""

from conftest import run_once

from repro.experiments import sec71_classify


def test_sec71_vendor_classification(benchmark, bench_campaigns, report):
    result = run_once(
        benchmark, lambda: sec71_classify.run(campaigns=bench_campaigns)
    )
    report(result)
    accuracy = result.extra["held_out_accuracy"]
    assert accuracy is None or accuracy >= 0.5
