"""Throughput benchmarks for the simulator and the tools.

Unlike the table/figure benches (single-shot regenerations), these use
pytest-benchmark's repeated timing to track the substrate's speed: raw
probe throughput, one full CenTrace measurement, one CenFuzz strategy.
"""

import pytest

from repro.core.cenfuzz import CenFuzz
from repro.core.centrace import CenTrace, CenTraceConfig
from repro.devices.vendors import KZ_STATE, make_device
from repro.netmodel.http import HTTPRequest
from repro.netmodel.tls import ClientHello, parse_client_hello
from repro.netsim.routing import Hop, Path, Route
from repro.netsim.simulator import Simulator
from repro.netsim.tcpstack import open_connection
from repro.netsim.topology import Client, Endpoint, Router, Topology
from repro.services.webserver import WebServer

BLOCKED = "www.blocked.example"


def _world(with_device=True):
    topo = Topology("perf")
    client = topo.add_client(Client("c", "100.64.0.1", asn=1))
    routers = [
        topo.add_router(Router(f"r{i}", f"100.70.{i}.1", asn=2))
        for i in range(8)
    ]
    endpoint = topo.add_endpoint(
        Endpoint("e", "100.96.0.1", asn=9, server=WebServer(["ok.example"]))
    )
    device = make_device(KZ_STATE, "dev", [BLOCKED]) if with_device else None
    hops = [
        Hop(r.name, link_devices=[device] if (device and i == 3) else [])
        for i, r in enumerate(routers)
    ]
    hops.append(Hop(endpoint.name))
    topo.add_route(client.ip, endpoint.ip, Route([Path(hops)]))
    return Simulator(topo, seed=1), client, endpoint


def _dns_world():
    """A resolver endpoint behind 8 routers (the UDP ladder target)."""
    from repro.services.dnsresolver import DNSResolver

    topo = Topology("perf-dns")
    client = topo.add_client(Client("c", "100.64.0.1", asn=1))
    routers = [
        topo.add_router(Router(f"r{i}", f"100.71.{i}.1", asn=2))
        for i in range(8)
    ]
    endpoint = topo.add_endpoint(
        Endpoint(
            "e",
            "100.96.0.1",
            asn=9,
            resolver=DNSResolver(zone={"ok.example": "93.184.216.34"}),
            services={53: "dns"},
        )
    )
    hops = [Hop(r.name) for r in routers]
    hops.append(Hop(endpoint.name))
    topo.add_route(client.ip, endpoint.ip, Route([Path(hops)]))
    return Simulator(topo, seed=1), client, endpoint


def test_perf_probe_roundtrip(benchmark):
    """One TTL-limited probe over a fresh connection (the unit CenTrace
    spends thousands of), through the batched packet plane."""
    sim, client, endpoint = _world(with_device=False)
    engine = sim.batch_engine()
    payload = HTTPRequest.normal("ok.example").build()

    def probe():
        conn = open_connection(sim, client, endpoint.ip, 80, engine=engine)
        conn.send_payload(payload, ttl=4)
        conn.close()

    benchmark(probe)


def test_perf_probe_roundtrip_scalar(benchmark):
    """The same probe on the scalar engine (the batched path's
    reference point)."""
    sim, client, endpoint = _world(with_device=False)
    payload = HTTPRequest.normal("ok.example").build()

    def probe():
        conn = open_connection(sim, client, endpoint.ip, 80)
        conn.send_payload(payload, ttl=4)
        conn.close()

    benchmark(probe)


def test_perf_udp_ladder_batched(benchmark):
    """One batched TTL ladder (12 UDP probes) through run_udp_ladder —
    the array fast path where packets are materialized lazily."""
    sim, client, endpoint = _dns_world()
    engine = sim.batch_engine()
    ttls = list(range(1, 13))

    def ladder():
        engine.run_udp_ladder(
            client.ip, endpoint.ip, 53, ttls, lambda sport: b"\x12\x34q"
        )

    benchmark(ladder)


def test_perf_centrace_measurement(benchmark):
    """One full CenTrace measurement (control+test, 3 repetitions)."""
    sim, client, endpoint = _world()
    tracer = CenTrace(sim, client, config=CenTraceConfig(repetitions=3))
    benchmark.pedantic(
        lambda: tracer.measure(endpoint.ip, BLOCKED, "http"),
        rounds=3,
        iterations=1,
    )


def test_perf_cenfuzz_strategy(benchmark):
    """One CenFuzz strategy (Get Word Alt., 6 permutations x 2 domains)."""
    sim, client, endpoint = _world()
    fuzzer = CenFuzz(sim, client)
    benchmark.pedantic(
        lambda: fuzzer.run_endpoint(
            endpoint.ip, BLOCKED, "http", strategies=["Get Word Alt."]
        ),
        rounds=3,
        iterations=1,
    )


def test_perf_clienthello_roundtrip(benchmark):
    """TLS ClientHello build+parse (the hot path of TLS inspection)."""
    def round_trip():
        raw = ClientHello.normal(BLOCKED).build()
        assert parse_client_hello(raw).sni == BLOCKED

    benchmark(round_trip)


@pytest.mark.slow
def test_perf_campaign_serial_vs_parallel(tmp_path, campaign_bench_record):
    """Full campaign, serial vs 4 workers: timing and bit-identity.

    Scale via REPRO_BENCH_SCALE (1.0 = paper-scale). Timings land in
    benchmarks/output/BENCH_campaign.json; compare against the
    committed benchmarks/BENCH_campaign.json via `make bench`.
    """
    import hashlib
    import json
    import os
    import time

    from repro.experiments.campaign import CampaignConfig, run_campaign
    from repro.geo.countries import build_world
    from repro.persist import save_campaign

    from .conftest import BENCH_REPETITIONS, BENCH_SCALE

    config = CampaignConfig(repetitions=BENCH_REPETITIONS)

    def timed(workers, tag):
        world = build_world("RU", seed=7, scale=BENCH_SCALE)
        start = time.perf_counter()  # lint: ignore[RP101] -- benchmark harness measures wall time by design
        campaign = run_campaign(world, config, workers=workers)
        elapsed = time.perf_counter() - start  # lint: ignore[RP101] -- benchmark harness measures wall time by design
        out = tmp_path / tag
        save_campaign(campaign, str(out))
        digest = hashlib.sha256()
        for path in sorted(out.iterdir()):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        return elapsed, digest.hexdigest(), campaign

    serial_s, serial_digest, campaign = timed(None, "serial")
    parallel_s, parallel_digest, _ = timed(4, "parallel")
    assert serial_digest == parallel_digest  # bit-identical, always
    assert campaign.remote_results

    campaign_bench_record.update(
        {
            "country": "RU",
            "scale": BENCH_SCALE,
            "repetitions": BENCH_REPETITIONS,
            "trace_measurements": len(campaign.all_trace_results()),
            "fuzz_reports": len(campaign.fuzz_reports),
            "serial_s": round(serial_s, 3),
            "workers_4_s": round(parallel_s, 3),
            "speedup_x4": round(serial_s / parallel_s, 3),
            "cpus": os.cpu_count(),
        }
    )
    print()
    print(json.dumps(campaign_bench_record, indent=2, sort_keys=True))
