"""Benches for the in-text experiments (§4.1, §4.3, §5.3, §6.3, §7.4)."""

from conftest import run_once

from repro.experiments import (
    sec41_pathvar,
    sec43_quotes,
    sec53_banners,
    sec63_circumvention,
    sec74_correlations,
)


def test_sec41_path_variance_calibration(benchmark, report):
    """§4.1: path-variance calibration (reduced trace count)."""
    result = run_once(benchmark, lambda: sec41_pathvar.run(traceroutes=60))
    report(result)
    assert result.extra["max_unique_paths"] > 40


def test_sec43_quoted_packets(benchmark, bench_campaigns, report):
    """§4.3: RFC792/RFC1812 quoting and header deltas at blocking hops."""
    result = run_once(benchmark, lambda: sec43_quotes.run(campaigns=bench_campaigns))
    report(result)
    assert result.extra["rfc792_pct"] > 0


def test_sec53_device_banners(benchmark, bench_campaigns, bench_blockpage_campaign, report):
    """§5.3: banner case study and vendor inventory."""
    result = run_once(
        benchmark, lambda: sec53_banners.run(campaigns=bench_campaigns)
    )
    report(result)
    assert result.extra["label_mismatches"] == 0


def test_sec63_circumvention(benchmark, report):
    """§6.3: evasion vs circumvention from the KZ vantage."""
    result = run_once(benchmark, sec63_circumvention.run)
    report(result)
    assert result.extra["pokerstars_pad_circumvented"]


def test_sec74_vendor_correlations(benchmark, bench_campaigns, bench_blockpage_campaign, report):
    """§7.4: Spearman vendor-similarity correlations."""
    result = run_once(
        benchmark, lambda: sec74_correlations.run(campaigns=bench_campaigns)
    )
    report(result)
    within = result.extra["within_vendor"]
    assert within and result.extra["cross_vendor_mean"] < max(within.values())
