"""Ablation benches for the design choices DESIGN.md calls out.

1. TTL-copy correction (§4.3): without it, TTL-copying injectors are
   attributed to hops past the endpoint with no usable IP.
2. Repetition count (§4.1): with ECMP path variance, single-shot
   traceroutes attribute the blocking hop unstably.
3. Control-domain traceroute: drop-type blocking leaves no hop IP in
   the test trace; only the control trace recovers the device IP.
4. Conservative blocking definition: counting any non-200 response as
   censorship would flag nearly every infrastructural endpoint.
"""

import pytest
from conftest import run_once

from repro.core.centrace import CenTrace, CenTraceConfig
from repro.core.centrace.classify import classify_measurement
from repro.devices.vendors import KZ_STATE, TSPU_TTLCOPY, make_device
from repro.netmodel.http import HTTPResponse
from repro.netsim.routing import Hop, Path, Route
from repro.netsim.simulator import Simulator
from repro.netsim.topology import Client, Endpoint, Router, Topology
from repro.services.webserver import WebServer

BLOCKED = "www.blocked.example"
CONTROL = "www.example.com"


def _world(device, device_link=3, n_routers=6, ecmp=False, seed=5):
    topo = Topology("ablation")
    client = topo.add_client(Client("c", "100.64.0.1", asn=1))
    routers = [
        topo.add_router(Router(f"r{i}", f"100.70.{i}.1", asn=2 + i))
        for i in range(n_routers)
    ]
    endpoint = topo.add_endpoint(
        Endpoint("e", "100.96.0.1", asn=99, server=WebServer(["ok.example"]))
    )
    hops = [
        Hop(r.name, link_devices=[device] if i == device_link else [])
        for i, r in enumerate(routers)
    ]
    hops.append(Hop(endpoint.name))
    paths = [Path(hops)]
    if ecmp:
        # Alternate middle hop upstream of the device.
        alt = topo.add_router(Router("alt", "100.71.0.1", asn=50))
        alt_hops = list(hops)
        alt_hops[1] = Hop(alt.name)
        paths.append(Path(alt_hops))
    topo.add_route(client.ip, endpoint.ip, Route(paths, weights=[2.0, 1.0] if ecmp else None))
    return topo, Simulator(topo, seed=seed), client, endpoint


def test_ablation_ttl_copy_correction(benchmark, report):
    """Without the correction, the device IP is unattributable."""
    from repro.experiments.base import ExperimentResult

    device = make_device(TSPU_TTLCOPY, "dev", [BLOCKED])
    # Device at hop 5 of 7: the forged RST first survives at probe TTL
    # 11, well past the endpoint.
    topo, sim, client, endpoint = _world(device, device_link=4)

    def run():
        tracer = CenTrace(sim, client, config=CenTraceConfig(repetitions=2))
        control = [tracer.sweep(endpoint.ip, CONTROL, "http") for _ in range(2)]
        test = [tracer.sweep(endpoint.ip, BLOCKED, "http") for _ in range(2)]
        corrected = classify_measurement(
            endpoint_ip=endpoint.ip, test_domain=BLOCKED, protocol="http",
            control_sweeps=control, test_sweeps=test, correct_ttl_copy=True,
        )
        naive = classify_measurement(
            endpoint_ip=endpoint.ip, test_domain=BLOCKED, protocol="http",
            control_sweeps=control, test_sweeps=test, correct_ttl_copy=False,
        )
        return corrected, naive

    corrected, naive = run_once(benchmark, run)
    result = ExperimentResult(
        experiment_id="ablation_ttlcopy",
        title="Ablation: TTL-copy correction on/off",
        headers=["Variant", "BlockingHopIP", "HopDistance", "Location"],
        rows=[
            (
                "corrected",
                corrected.blocking_hop.ip,
                corrected.corrected_device_distance,
                corrected.location_class,
            ),
            (
                "naive",
                naive.blocking_hop.ip,
                naive.terminating_ttl,
                naive.location_class,
            ),
        ],
    )
    report(result)
    assert corrected.blocking_hop.ip is not None
    assert naive.blocking_hop.ip is None  # points past the endpoint


@pytest.mark.parametrize("repetitions", [1, 3, 7])
def test_ablation_repetition_count(benchmark, report, repetitions):
    """More repetitions stabilize blocking-hop attribution under ECMP."""
    from repro.experiments.base import ExperimentResult

    device = make_device(KZ_STATE, "dev", [BLOCKED])
    topo, sim, client, endpoint = _world(device, ecmp=True)
    true_hop = "100.70.3.1"

    def run():
        tracer = CenTrace(
            sim, client, config=CenTraceConfig(repetitions=repetitions)
        )
        hits = 0
        trials = 6
        for _ in range(trials):
            result = tracer.measure(endpoint.ip, BLOCKED, "http", CONTROL)
            if result.blocking_hop and result.blocking_hop.ip == true_hop:
                hits += 1
        return hits, trials

    hits, trials = run_once(benchmark, run)
    result = ExperimentResult(
        experiment_id=f"ablation_reps_{repetitions}",
        title=f"Ablation: {repetitions} repetition(s) under ECMP",
        headers=["Repetitions", "StableAttributions", "Trials"],
        rows=[(repetitions, hits, trials)],
    )
    report(result)
    assert hits >= trials - 2 if repetitions >= 3 else True


def test_ablation_control_domain_needed(benchmark, report):
    """Drop-type blocking leaves no hop IP in the test trace."""
    from repro.experiments.base import ExperimentResult

    device = make_device(KZ_STATE, "dev", [BLOCKED])
    topo, sim, client, endpoint = _world(device)

    def run():
        tracer = CenTrace(sim, client, config=CenTraceConfig(repetitions=2))
        control = [tracer.sweep(endpoint.ip, CONTROL, "http") for _ in range(2)]
        test = [tracer.sweep(endpoint.ip, BLOCKED, "http") for _ in range(2)]
        with_control = classify_measurement(
            endpoint_ip=endpoint.ip, test_domain=BLOCKED, protocol="http",
            control_sweeps=control, test_sweeps=test,
        )
        # Classify using the test sweeps as their own "control".
        without_control = classify_measurement(
            endpoint_ip=endpoint.ip, test_domain=BLOCKED, protocol="http",
            control_sweeps=test, test_sweeps=test,
        )
        return with_control, without_control

    with_control, without_control = run_once(benchmark, run)
    result = ExperimentResult(
        experiment_id="ablation_control_domain",
        title="Ablation: control-domain traceroute on/off",
        headers=["Variant", "Valid", "BlockingHopIP"],
        rows=[
            ("with-control", with_control.valid, with_control.blocking_hop.ip),
            ("test-only", without_control.valid, "-"),
        ],
    )
    report(result)
    assert with_control.blocking_hop.ip == "100.70.3.1"
    # Without a reachable control, the measurement is uninterpretable.
    assert not without_control.valid


def test_ablation_conservative_blocking(benchmark, bench_campaigns, report):
    """Counting any non-200 response as censorship explodes false
    positives (the conservative definition of §4.1 avoids this)."""
    from repro.experiments.base import ExperimentResult

    campaign = bench_campaigns["RU"]

    def run():
        conservative = 0
        naive = 0
        total = 0
        for trace in campaign.remote_results:
            if not trace.valid:
                continue
            total += 1
            if trace.blocked:
                conservative += 1
                naive += 1
                continue
            # Naive rule: any response other than HTTP 200 / TLS served
            # counts as interference.
            sweep = trace.sweeps_test[0] if trace.sweeps_test else None
            response = sweep.terminating_response if sweep else None
            if response is not None and response.payload:
                parsed = HTTPResponse.parse(response.payload)
                if parsed is not None and parsed.status_code != 200:
                    naive += 1
        return conservative, naive, total

    conservative, naive, total = run_once(benchmark, run)
    result = ExperimentResult(
        experiment_id="ablation_conservative",
        title="Ablation: conservative vs naive blocking definition (RU)",
        headers=["Definition", "BlockedCTs", "TotalCTs"],
        rows=[
            ("conservative (paper)", conservative, total),
            ("any-anomaly (naive)", naive, total),
        ],
    )
    report(result)
    assert naive > conservative * 2


def test_ablation_stateful_wait(benchmark, report):
    """Without the 120-second waits (§4.1/§6.2), residual censorship
    poisons the Control-Domain traces and measurements turn invalid."""
    from repro.experiments.base import ExperimentResult

    def run():
        outcomes = {}
        for wait, label in ((120.0, "120s wait (paper)"), (1.0, "1s wait")):
            device = make_device(KZ_STATE, "dev", [BLOCKED])
            topo, sim, client, endpoint = _world(device)
            tracer = CenTrace(
                sim,
                client,
                config=CenTraceConfig(
                    repetitions=2, wait_after_block=wait
                ),
            )
            valid = 0
            trials = 4
            for _ in range(trials):
                # Test-domain sweep first poisons the tuple, then the
                # control sweep runs into the residual window.
                test = [tracer.sweep(endpoint.ip, BLOCKED, "http") for _ in range(2)]
                control = [tracer.sweep(endpoint.ip, CONTROL, "http") for _ in range(2)]
                result = classify_measurement(
                    endpoint_ip=endpoint.ip, test_domain=BLOCKED,
                    protocol="http", control_sweeps=control, test_sweeps=test,
                )
                if result.valid:
                    valid += 1
            outcomes[label] = (valid, trials)
        return outcomes

    outcomes = run_once(benchmark, run)
    result = ExperimentResult(
        experiment_id="ablation_stateful_wait",
        title="Ablation: inter-probe wait vs residual censorship",
        headers=["Variant", "ValidMeasurements", "Trials"],
        rows=[(label, v, t) for label, (v, t) in outcomes.items()],
    )
    report(result)
    valid_long, _ = outcomes["120s wait (paper)"]
    valid_short, _ = outcomes["1s wait"]
    assert valid_long == 4
    assert valid_short < valid_long
