"""Bench: CenFuzz's deterministic sweep vs Geneva-style genetic search.

§6.1's trade-off quantified: the genetic baseline finds one working
evasion with far fewer probes, but its probe set is randomized and
device-specific — useless as a comparable fingerprint — while CenFuzz
spends a fixed 2x410 HTTP probes and yields the full strategy vector.
"""

from conftest import run_once

from repro.baselines.genetic import GeneticSearch
from repro.core.cenfuzz import CenFuzz
from repro.experiments.base import ExperimentResult
from repro.geo.countries import build_kz_world


def test_genetic_vs_cenfuzz_probe_budget(benchmark, report):
    world = build_kz_world()
    endpoint = world.endpoints[0]
    domain = world.test_domains[0]

    def run():
        # Deterministic sweep: every probe pair counted.
        fuzzer = CenFuzz(world.sim, world.remote_client)
        sweep = fuzzer.run_endpoint(
            endpoint.ip, domain, "http", world.control_domain
        )
        cenfuzz_probes = 2 * len(sweep.results) + 2  # + the Normal pair
        evasions = sum(1 for r in sweep.results if r.successful)

        search = GeneticSearch(
            world.sim, world.remote_client, endpoint.ip, domain, seed=11
        )
        outcome = search.run()
        return cenfuzz_probes, evasions, outcome

    cenfuzz_probes, evasions, outcome = run_once(benchmark, run)
    result = ExperimentResult(
        experiment_id="baseline_genetic",
        title="CenFuzz deterministic sweep vs genetic search (§6.1 trade-off)",
        headers=["Approach", "Probes", "Outcome"],
        rows=[
            (
                "CenFuzz (deterministic)",
                cenfuzz_probes,
                f"{evasions} evading permutations (full fingerprint)",
            ),
            (
                "Genetic (Geneva-style)",
                outcome.probes_used,
                f"1 strategy: {outcome.best.describe()}",
            ),
        ],
    )
    report(result)
    assert outcome.succeeded
    assert outcome.probes_used < cenfuzz_probes
