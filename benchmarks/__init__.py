"""Benchmark suite: table/figure regenerations plus perf tracking.

Run `python -m benchmarks` (or `make bench`) for the regression gate,
or `PYTHONPATH=src python -m pytest benchmarks/` for the full suite.
"""
