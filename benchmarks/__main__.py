"""Perf regression gate: ``python -m benchmarks`` (or ``make bench``).

Measures current probe throughput and serial-vs-parallel campaign
timings, verifies the parallel run is bit-identical to the serial run,
writes the numbers to ``benchmarks/output/BENCH_campaign.json``, and
exits non-zero when probe throughput regressed more than 20% against
the committed ``benchmarks/BENCH_campaign.json`` baseline.

``--update`` rewrites the committed baseline with the fresh numbers
(do this deliberately, on a quiet machine).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

BASELINE_PATH = Path(__file__).parent / "BENCH_campaign.json"
OUTPUT_PATH = Path(__file__).parent / "output" / "BENCH_campaign.json"
REGRESSION_TOLERANCE = 0.20  # fail when >20% slower than baseline


def measure_probe_throughput(
    probes: int = 3000, telemetry: bool = False, batched: bool = True
) -> float:
    """Probes per second on the canonical 8-hop perf topology.

    ``batched=True`` (the headline) routes each connection's sends
    through the batched packet plane (``sim.batch_engine()``) exactly
    as CenTrace and CenFuzz do; ``batched=False`` measures the scalar
    ``_run_transit`` walk as a reference. ``telemetry=True`` installs
    an active telemetry sink on the simulator, measuring the overhead
    of the instrumented path relative to the NullTelemetry hot path.
    """
    from repro.netmodel.http import HTTPRequest
    from repro.netsim.tcpstack import open_connection

    from benchmarks.test_perf import _world

    sim, client, endpoint = _world(with_device=False)
    if telemetry:
        from repro.telemetry import Telemetry

        sim.set_telemetry(Telemetry())
    engine = sim.batch_engine() if batched else None
    payload = HTTPRequest.normal("ok.example").build()

    def probe() -> None:
        conn = open_connection(sim, client, endpoint.ip, 80, engine=engine)
        conn.send_payload(payload, ttl=4)
        conn.close()

    for _ in range(200):  # warm caches/allocator before timing
        probe()
    start = time.perf_counter()  # lint: ignore[RP101] -- benchmark harness measures wall time by design
    for _ in range(probes):
        probe()
    elapsed = time.perf_counter() - start  # lint: ignore[RP101] -- benchmark harness measures wall time by design
    return probes / elapsed


def measure_ladder_throughput(probes: int = 6000) -> float:
    """Probes per second for a batched UDP TTL ladder (array fast path).

    This is the pure array path: whole ladders submitted through
    ``BatchEngine.run_udp_ladder`` against a resolver endpoint, where
    packets are only materialized for probes whose terminal event needs
    one.
    """
    from benchmarks.test_perf import _dns_world

    sim, client, endpoint = _dns_world()
    engine = sim.batch_engine()
    ttls = list(range(1, 13))

    def ladder() -> None:
        engine.run_udp_ladder(
            client.ip, endpoint.ip, 53, ttls, lambda sport: b"\x12\x34q"
        )

    for _ in range(20):
        ladder()
    rounds = max(1, probes // len(ttls))
    start = time.perf_counter()  # lint: ignore[RP101] -- benchmark harness measures wall time by design
    for _ in range(rounds):
        ladder()
    elapsed = time.perf_counter() - start  # lint: ignore[RP101] -- benchmark harness measures wall time by design
    return rounds * len(ttls) / elapsed


def measure_campaign(scale: float, repetitions: int) -> dict:
    """Serial vs 4-worker campaign timing, with a bit-identity check."""
    from repro.experiments.campaign import CampaignConfig, run_campaign
    from repro.geo.countries import build_world
    from repro.persist import save_campaign

    import tempfile

    config = CampaignConfig(repetitions=repetitions)

    def timed(workers):
        world = build_world("RU", seed=7, scale=scale)
        start = time.perf_counter()  # lint: ignore[RP101] -- benchmark harness measures wall time by design
        campaign = run_campaign(world, config, workers=workers)
        elapsed = time.perf_counter() - start  # lint: ignore[RP101] -- benchmark harness measures wall time by design
        with tempfile.TemporaryDirectory() as tmp:
            save_campaign(campaign, tmp)
            digest = hashlib.sha256()
            for path in sorted(Path(tmp).iterdir()):
                data = path.read_bytes()
                if path.name == "meta.json":
                    # meta v3's environment section records execution
                    # shape (worker count), not measurement content —
                    # excluded from the identity check.
                    meta = json.loads(data)
                    meta.pop("environment", None)
                    data = json.dumps(meta, sort_keys=True).encode()
                digest.update(path.name.encode())
                digest.update(data)
        return elapsed, digest.hexdigest(), campaign

    serial_s, serial_digest, campaign = timed(None)
    parallel_s, parallel_digest, _ = timed(4)
    if serial_digest != parallel_digest:
        raise SystemExit(
            "FATAL: parallel campaign output differs from serial output"
        )
    cpus = os.cpu_count() or 1
    result = {
        "country": "RU",
        "scale": scale,
        "repetitions": repetitions,
        "trace_measurements": len(campaign.all_trace_results()),
        "fuzz_reports": len(campaign.fuzz_reports),
        "serial_s": round(serial_s, 3),
        "workers_4_s": round(parallel_s, 3),
        # The machine the numbers were taken on: a 4-worker "speedup"
        # is only meaningful with >= 4 cores to spread over.
        "cpus": cpus,
    }
    if cpus >= 4:
        result["speedup_x4"] = round(serial_s / parallel_s, 3)
    else:
        # On a 1-core box 4 workers only add IPC overhead; recording a
        # sub-1.0 "speedup" as if it measured scaling is misleading.
        result["speedup_x4"] = None
        result["speedup_note"] = (
            f"not comparable: only {cpus} cpu(s); "
            "4-worker run kept for the bit-identity check only"
        )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m benchmarks")
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed BENCH_campaign.json baseline",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_SCALE", "0.3")),
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_REPETITIONS", "2")),
    )
    args = parser.parse_args(argv)

    probes_per_s = measure_probe_throughput()
    print(f"probe throughput (batched): {probes_per_s:,.0f} probes/s")
    scalar_per_s = measure_probe_throughput(batched=False)
    print(
        f"probe throughput (scalar reference): {scalar_per_s:,.0f} probes/s "
        f"({probes_per_s / scalar_per_s:.2f}x batched speedup)"
    )
    metered_per_s = measure_probe_throughput(telemetry=True)
    print(
        f"probe throughput (telemetry on): {metered_per_s:,.0f} probes/s "
        f"({probes_per_s / metered_per_s:.2f}x overhead factor)"
    )
    ladder_per_s = measure_ladder_throughput()
    print(f"udp ladder throughput (array path): {ladder_per_s:,.0f} probes/s")
    campaign = measure_campaign(args.scale, args.repetitions)
    if campaign["speedup_x4"] is not None:
        parallel_note = f"({campaign['speedup_x4']}x)"
    else:
        parallel_note = "(speedup n/a on this machine)"
    print(
        f"campaign (RU, scale={campaign['scale']}): "
        f"serial {campaign['serial_s']}s, 4 workers "
        f"{campaign['workers_4_s']}s {parallel_note}, "
        "outputs bit-identical"
    )

    current = {
        # The gated headline: the workload CenTrace/CenFuzz actually
        # run (fresh connection + TTL-limited payload + close) through
        # the batched packet plane.
        "probe_throughput_per_s": round(probes_per_s, 1),
        # Informational (not gated): the same workload on the scalar
        # engine, the instrumented (telemetry-on) batched path, and the
        # pure array ladder.
        "probe_throughput_scalar_per_s": round(scalar_per_s, 1),
        "probe_throughput_telemetry_per_s": round(metered_per_s, 1),
        "udp_ladder_throughput_per_s": round(ladder_per_s, 1),
        "campaign": campaign,
        "machine": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
    }
    OUTPUT_PATH.parent.mkdir(exist_ok=True)
    OUTPUT_PATH.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT_PATH}")

    if args.update:
        BASELINE_PATH.write_text(
            json.dumps(current, indent=2, sort_keys=True) + "\n"
        )
        print(f"updated baseline {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --update to create")
        return 0
    baseline = json.loads(BASELINE_PATH.read_text())
    base_rate = baseline["probe_throughput_per_s"]
    delta = (probes_per_s - base_rate) / base_rate
    print(
        f"delta vs committed baseline: {delta:+.1%} "
        f"({probes_per_s:,.0f}/s vs {base_rate:,.0f}/s)"
    )
    floor = base_rate * (1 - REGRESSION_TOLERANCE)
    if probes_per_s < floor:
        print(
            f"FAIL: probe throughput {probes_per_s:,.0f}/s is >"
            f"{REGRESSION_TOLERANCE:.0%} below baseline "
            f"{base_rate:,.0f}/s"
        )
        return 1
    print(f"OK: within {REGRESSION_TOLERANCE:.0%} of baseline {base_rate:,.0f}/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
