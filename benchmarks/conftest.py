"""Benchmark fixtures: shared campaigns and result reporting.

Every bench regenerates one of the paper's tables/figures and both
prints the rows (run with ``-s`` to see them live) and writes them to
``benchmarks/output/<experiment>.txt`` so the series are inspectable
after a quiet run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"

# Scale knob: REPRO_BENCH_SCALE=1.0 runs the paper-scale worlds (slow).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
BENCH_REPETITIONS = int(os.environ.get("REPRO_BENCH_REPETITIONS", "2"))


@pytest.fixture(scope="session")
def bench_campaigns():
    from repro.experiments.campaign import get_campaign

    return {
        country: get_campaign(
            country, scale=BENCH_SCALE, repetitions=BENCH_REPETITIONS
        )
        for country in ("AZ", "BY", "KZ", "RU")
    }


@pytest.fixture(scope="session")
def bench_blockpage_campaign():
    from repro.experiments.fig9 import blockpage_campaign

    return blockpage_campaign()


@pytest.fixture
def report():
    """Print an ExperimentResult and persist it under benchmarks/output."""

    def _report(result) -> None:
        text = result.render()
        print()
        print(text)
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
