"""Benchmark fixtures: shared campaigns and result reporting.

Every bench regenerates one of the paper's tables/figures and both
prints the rows (run with ``-s`` to see them live) and writes them to
``benchmarks/output/<experiment>.txt`` so the series are inspectable
after a quiet run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"

# Scale knob: REPRO_BENCH_SCALE=1.0 runs the paper-scale worlds (slow).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
BENCH_REPETITIONS = int(os.environ.get("REPRO_BENCH_REPETITIONS", "2"))


@pytest.fixture(scope="session")
def bench_campaigns():
    from repro.experiments.campaign import get_campaign

    return {
        country: get_campaign(
            country, scale=BENCH_SCALE, repetitions=BENCH_REPETITIONS
        )
        for country in ("AZ", "BY", "KZ", "RU")
    }


@pytest.fixture(scope="session")
def bench_blockpage_campaign():
    from repro.experiments.fig9 import blockpage_campaign

    return blockpage_campaign()


@pytest.fixture
def report():
    """Print an ExperimentResult and persist it under benchmarks/output."""

    def _report(result) -> None:
        text = result.render()
        print()
        print(text)
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# -- campaign-performance record --------------------------------------------

# Filled by the (slow) parallel-campaign bench in test_perf.py; written
# out at session end so CI and `python -m benchmarks` can compare runs
# against the committed benchmarks/BENCH_campaign.json baseline.
_CAMPAIGN_BENCH: dict = {}


@pytest.fixture(scope="session")
def campaign_bench_record():
    return _CAMPAIGN_BENCH


def pytest_sessionfinish(session, exitstatus):
    if _CAMPAIGN_BENCH:
        OUTPUT_DIR.mkdir(exist_ok=True)
        path = OUTPUT_DIR / "BENCH_campaign.json"
        path.write_text(
            json.dumps(_CAMPAIGN_BENCH, indent=2, sort_keys=True) + "\n"
        )
