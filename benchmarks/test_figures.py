"""Benches for Figures 1, 3, 4, 5, 6, 9 and 10-12."""

from conftest import run_once

from repro.experiments import fig1, fig3, fig4, fig5, fig6, fig9, fig10_12


def test_fig1_kz_in_country_map(benchmark, report):
    """Figure 1: CenTrace from the KZ in-country client."""
    result = run_once(benchmark, lambda: fig1.run(repetitions=2))
    report(result)
    assert result.extra["blocking_asns"] == [9198]


def test_fig3_blocking_type_and_location(benchmark, bench_campaigns, report):
    """Figure 3: blocking type x location per country."""
    result = run_once(benchmark, lambda: fig3.run(campaigns=bench_campaigns))
    report(result)
    assert result.extra["drops_and_resets_pct"] > 90


def test_fig4_inpath_onpath_hops(benchmark, bench_campaigns, report):
    """Figure 4: in-path vs on-path, hop distance from endpoint."""
    result = run_once(benchmark, lambda: fig4.run(campaigns=bench_campaigns))
    report(result)
    rows = result.row_dict()
    assert rows["AZ"][2] == 0 and rows["KZ"][2] == 0


def test_fig5_cenfuzz_success_rates(benchmark, bench_campaigns, report):
    """Figure 5: CenFuzz strategy success rates per country."""
    result = run_once(benchmark, lambda: fig5.run(campaigns=bench_campaigns))
    report(result)
    assert result.extra["trailing_pad_pct"] > result.extra["leading_pad_pct"]


def test_fig6_endpoint_clusters(benchmark, bench_campaigns, report):
    """Figure 6: DBSCAN clusters of blocked endpoints."""
    result = run_once(benchmark, lambda: fig6.run(campaigns=bench_campaigns))
    report(result)
    assert result.extra["n_clusters"] >= 3


def test_fig9_feature_importance(benchmark, bench_blockpage_campaign, report):
    """Figure 9: random-forest MDI feature importances."""
    result = run_once(benchmark, fig9.run)
    report(result)
    importance = result.extra["importance"]
    assert "CensorResponse" in importance.top(6)


def test_fig10_12_remote_path_maps(benchmark, bench_campaigns, report):
    """Figures 10-12: remote CenTrace path graphs for AZ/BY/KZ."""
    result = run_once(
        benchmark, lambda: fig10_12.run(campaigns=bench_campaigns)
    )
    report(result)
    az_links = result.extra["AZ_links"]
    assert any("Delta Telecom" in b for _, b, _ in az_links)
