"""Bench: the DNS-injection extension (paper §8 future work).

Regenerates a Table-1-style summary for the DNS demo world: per
resolver, whether DNS queries for censored domains are answered by a
forged injector (and where it sits) versus the real resolver.
"""

from conftest import run_once

from repro.core.centrace import CenTrace, CenTraceConfig
from repro.core.centrace.results import PROTO_DNS, TYPE_DNSINJECT
from repro.experiments.base import ExperimentResult
from repro.geo.countries import build_dns_world


def test_dns_injection_detection(benchmark, report):
    world = build_dns_world()
    tracer = CenTrace(
        world.sim,
        world.remote_client,
        asdb=world.asdb,
        config=CenTraceConfig(repetitions=2),
    )

    def run():
        rows = []
        for endpoint in world.endpoints:
            for domain in world.test_domains + ["www.clean.example"]:
                measurement = tracer.measure(endpoint.ip, domain, PROTO_DNS)
                rows.append(
                    (
                        endpoint.name,
                        domain,
                        measurement.blocking_type,
                        measurement.terminating_ttl,
                        measurement.endpoint_distance,
                        measurement.in_path,
                    )
                )
        return rows

    rows = run_once(benchmark, run)
    result = ExperimentResult(
        experiment_id="dns_extension",
        title="DNS injection located by TTL-limited queries (§8 extension)",
        headers=["Resolver", "Domain", "Verdict", "TermTTL", "Distance", "InPath"],
        rows=rows,
    )
    report(result)
    injected = [r for r in rows if r[2] == TYPE_DNSINJECT]
    clean = [r for r in rows if r[1] == "www.clean.example"]
    assert injected, "censored domains must show DNS injection"
    assert all(r[2] == "NORMAL" for r in clean)
    # Injections terminate before the resolver's distance.
    assert all(r[3] < r[4] for r in injected)
